// Tests for the dIPC core: Table 2 objects/operations, proxies and in-place
// cross-process calls, isolation policies, KCS crash unwinding, the process
// tracker, entry resolution, fork/exec, and §5.4 timeouts.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/loader.h"
#include "dipc/proxy.h"
#include "dipc/resolution.h"
#include "hw/machine.h"
#include "os/kernel.h"

namespace dipc::core {
namespace {

using base::ErrorCode;
using sim::Duration;

class DipcTest : public ::testing::Test {
 protected:
  DipcTest()
      : machine_(4),
        codoms_(machine_),
        kernel_(machine_, codoms_),
        dipc_(kernel_),
        web_(dipc_.CreateDipcProcess("web")),
        db_(dipc_.CreateDipcProcess("db")) {}

  // Runs `body` on a fresh thread of `proc` and drives the sim to idle.
  void RunIn(os::Process& proc, std::function<sim::Task<void>(os::Env)> body, int pin = -1) {
    kernel_.Spawn(proc, "main", std::move(body), pin);
    kernel_.Run();
  }

  // Registers a single entry point `fn` in db_ and returns a ProxyRef wired
  // up for calls from web_ (grants included).
  ProxyRef MakeEntry(EntryFn fn, IsolationPolicy callee_policy = IsolationPolicy::Low(),
                     IsolationPolicy caller_policy = IsolationPolicy::Low(),
                     EntrySignature sig = EntrySignature{}) {
    auto dom = dipc_.DomDefault(db_);
    EntryDesc desc;
    desc.name = "entry";
    desc.signature = sig;
    desc.policy = callee_policy;
    desc.fn = std::move(fn);
    auto handle = dipc_.EntryRegister(db_, *dom, {std::move(desc)});
    DIPC_CHECK(handle.ok());
    auto req = dipc_.EntryRequest(web_, *handle.value(), {{sig, caller_policy}});
    DIPC_CHECK(req.ok());
    auto web_dom = dipc_.DomDefault(web_);
    auto grant = dipc_.GrantCreate(*web_dom, *req.value().proxy_domain);
    DIPC_CHECK(grant.ok());
    return req.value().proxies[0];
  }

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  Dipc dipc_;
  os::Process& web_;
  os::Process& db_;
};

// ---- Domains and grants (Table 2, P1) ----

TEST_F(DipcTest, DomCopyOnlyDowngrades) {
  auto owner = dipc_.DomDefault(web_);
  EXPECT_EQ(owner->perm(), DomPerm::kOwner);
  auto read = dipc_.DomCopy(*owner, DomPerm::kRead);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value()->perm(), DomPerm::kRead);
  EXPECT_EQ(read.value()->tag(), owner->tag());
  // Upgrading back fails.
  EXPECT_EQ(dipc_.DomCopy(*read.value(), DomPerm::kOwner).code(), ErrorCode::kPermissionDenied);
}

TEST_F(DipcTest, DomMmapRequiresOwner) {
  auto owner = dipc_.DomDefault(web_);
  auto read = dipc_.DomCopy(*owner, DomPerm::kRead);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(dipc_.DomMmap(web_, *read.value(), 4096, hw::PageFlags{.writable = true}).code(),
            ErrorCode::kPermissionDenied);
  auto va = dipc_.DomMmap(web_, *owner, 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(web_.page_table().Lookup(va.value())->tag, owner->tag());
}

TEST_F(DipcTest, DomMmapLandsInsideProcessBlock) {
  auto owner = dipc_.DomDefault(web_);
  auto va = dipc_.DomMmap(web_, *owner, 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(va.ok());
  EXPECT_GE(va.value(), GlobalVas::kBase);
}

TEST_F(DipcTest, ProcessesGetDistinctBlocks) {
  auto w = dipc_.DomMmap(web_, *dipc_.DomDefault(web_), 4096, hw::PageFlags{.writable = true});
  auto d = dipc_.DomMmap(db_, *dipc_.DomDefault(db_), 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(w.ok() && d.ok());
  // 1 GB blocks: different processes land >= 1 GB apart.
  uint64_t distance = w.value() > d.value() ? w.value() - d.value() : d.value() - w.value();
  EXPECT_GE(distance, GlobalVas::kBlockSize / 2);
}

TEST_F(DipcTest, DomRemapMovesPagesBetweenDomains) {
  auto def = dipc_.DomDefault(web_);
  auto pool = dipc_.DomCreate(web_);
  ASSERT_TRUE(pool.ok());
  auto va = dipc_.DomMmap(web_, *def, 2 * 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(dipc_.DomRemap(web_, *pool.value(), *def, va.value(), 2 * 4096).ok());
  EXPECT_EQ(web_.page_table().Lookup(va.value())->tag, pool.value()->tag());
  // Remapping again from the old (now wrong) source fails.
  EXPECT_EQ(dipc_.DomRemap(web_, *pool.value(), *def, va.value(), 4096).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(DipcTest, GrantCreateEnablesDirectCrossProcessAccess) {
  // db exports a read-only view of a buffer; web reads it directly — no
  // proxy, no kernel (§5.2.2's direct-access pattern).
  auto db_dom = dipc_.DomDefault(db_);
  auto va = dipc_.DomMmap(db_, *db_dom, 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(va.ok());
  auto read_handle = dipc_.DomCopy(*db_dom, DomPerm::kRead);
  ASSERT_TRUE(read_handle.ok());
  auto web_dom = dipc_.DomDefault(web_);
  auto grant = dipc_.GrantCreate(*web_dom, *read_handle.value());
  ASSERT_TRUE(grant.ok());
  ErrorCode read_code = ErrorCode::kOk;
  ErrorCode write_code = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    auto r = co_await env.kernel->TouchUser(env, va.value(), 64, hw::AccessType::kRead);
    read_code = r.code();
    auto w = co_await env.kernel->TouchUser(env, va.value(), 64, hw::AccessType::kWrite);
    write_code = w.code();
  });
  EXPECT_EQ(read_code, ErrorCode::kOk);
  EXPECT_EQ(write_code, ErrorCode::kFault);  // read handle => read-only
}

TEST_F(DipcTest, GrantRevokeCutsAccess) {
  auto db_dom = dipc_.DomDefault(db_);
  auto va = dipc_.DomMmap(db_, *db_dom, 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(va.ok());
  auto read_handle = dipc_.DomCopy(*db_dom, DomPerm::kRead);
  auto grant = dipc_.GrantCreate(*dipc_.DomDefault(web_), *read_handle.value());
  ASSERT_TRUE(grant.ok());
  ASSERT_TRUE(dipc_.GrantRevoke(*grant.value()).ok());
  EXPECT_EQ(dipc_.GrantRevoke(*grant.value()).code(), ErrorCode::kInvalidArgument);
  ErrorCode code = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    auto r = co_await env.kernel->TouchUser(env, va.value(), 64, hw::AccessType::kRead);
    code = r.code();
  });
  EXPECT_EQ(code, ErrorCode::kFault);
}

TEST_F(DipcTest, GrantCreateNeedsOwnerOnSrc) {
  auto web_read = dipc_.DomCopy(*dipc_.DomDefault(web_), DomPerm::kRead);
  ASSERT_TRUE(web_read.ok());
  auto db_dom = dipc_.DomDefault(db_);
  EXPECT_EQ(dipc_.GrantCreate(*web_read.value(), *db_dom).code(), ErrorCode::kPermissionDenied);
}

// ---- Entry points and proxies (P2-P5) ----

TEST_F(DipcTest, EntryRegisterAssignsAlignedAddressesInDomain) {
  auto dom = dipc_.DomDefault(db_);
  EntryDesc a{.name = "a", .signature = {}, .policy = {}, .fn = [](os::Env, CallArgs)
                  -> sim::Task<uint64_t> { co_return 1; }};
  EntryDesc b{.name = "b", .signature = {}, .policy = {}, .fn = [](os::Env, CallArgs)
                  -> sim::Task<uint64_t> { co_return 2; }};
  auto handle = dipc_.EntryRegister(db_, *dom, {a, b});
  ASSERT_TRUE(handle.ok());
  for (size_t i = 0; i < handle.value()->count(); ++i) {
    hw::VirtAddr addr = handle.value()->entry(i).address;
    EXPECT_EQ(addr % codoms::kEntryAlign, 0u);
    EXPECT_EQ(db_.page_table().Lookup(addr)->tag, dom->tag());
  }
}

TEST_F(DipcTest, EntryRequestChecksSignatures) {
  auto dom = dipc_.DomDefault(db_);
  EntryDesc d{.name = "f",
              .signature = {.in_regs = 2, .out_regs = 1, .stack_bytes = 0},
              .policy = {},
              .fn = [](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 0; }};
  auto handle = dipc_.EntryRegister(db_, *dom, {d});
  ASSERT_TRUE(handle.ok());
  // Wrong in_regs: P4 violation.
  auto bad = dipc_.EntryRequest(web_, *handle.value(),
                                {{EntrySignature{.in_regs = 3, .out_regs = 1}, {}}});
  EXPECT_EQ(bad.code(), ErrorCode::kSignatureMismatch);
  // Wrong count.
  auto bad2 = dipc_.EntryRequest(web_, *handle.value(), {});
  EXPECT_EQ(bad2.code(), ErrorCode::kSignatureMismatch);
  auto good = dipc_.EntryRequest(web_, *handle.value(),
                                 {{EntrySignature{.in_regs = 2, .out_regs = 1}, {}}});
  EXPECT_TRUE(good.ok());
}

TEST_F(DipcTest, CrossProcessCallRunsInPlaceAndReturnsValue) {
  os::Process* seen_process = nullptr;
  uint64_t seen_arg = 0;
  ProxyRef entry = MakeEntry([&](os::Env env, CallArgs args) -> sim::Task<uint64_t> {
    seen_process = &env.self->process();  // time-slice donation: current == db
    seen_arg = args.regs[0];
    co_await env.kernel->Spend(*env.self, Duration::Nanos(10), os::TimeCat::kUser);
    co_return args.regs[0] * 2;
  });
  uint64_t result = 0;
  ErrorCode err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    CallArgs args;
    args.regs[0] = 21;
    result = co_await entry.Call(env, args);
    err = env.self->TakeError();
    // After the return we are back in web.
    EXPECT_EQ(&env.self->process(), &web_);
  });
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(err, ErrorCode::kOk);
  EXPECT_EQ(seen_process, &db_);
  EXPECT_EQ(seen_arg, 21u);
}

TEST_F(DipcTest, CallWithoutGrantFaults) {
  // Build the entry but *skip* the caller's grant_create.
  auto dom = dipc_.DomDefault(db_);
  EntryDesc d{.name = "f", .signature = {}, .policy = {}, .fn = [](os::Env, CallArgs)
                  -> sim::Task<uint64_t> { co_return 7; }};
  auto handle = dipc_.EntryRegister(db_, *dom, {d});
  ASSERT_TRUE(handle.ok());
  auto req = dipc_.EntryRequest(web_, *handle.value(), {{EntrySignature{}, {}}});
  ASSERT_TRUE(req.ok());
  ProxyRef entry = req.value().proxies[0];
  uint64_t result = 99;
  ErrorCode err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    result = co_await entry.Call(env, CallArgs{});
    err = env.self->TakeError();
  });
  EXPECT_EQ(result, 0u);
  EXPECT_EQ(err, ErrorCode::kFault);
}

TEST_F(DipcTest, MisalignedProxyEntryFaults) {
  // P2: Call permission only admits 64 B-aligned targets — jumping into the
  // middle of a proxy is rejected by CODOMs.
  ProxyRef entry = MakeEntry([](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 1; });
  ErrorCode code = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    auto r = env.kernel->codoms().ControlTransfer(env.self->last_cpu(),
                                                  env.self->process().page_table(),
                                                  env.self->cap_ctx(),
                                                  entry.proxy()->code_va() + 8);
    code = r.code();
    co_return;
  });
  EXPECT_EQ(code, ErrorCode::kFault);
}

TEST_F(DipcTest, EffectivePolicyIsUnion) {
  ProxyRef entry = MakeEntry([](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 0; },
                             /*callee=*/IsolationPolicy{kDcsIntegrity},
                             /*caller=*/IsolationPolicy{kRegIntegrity});
  EXPECT_TRUE(entry.proxy()->effective_policy().Has(kDcsIntegrity));
  EXPECT_TRUE(entry.proxy()->effective_policy().Has(kRegIntegrity));
  EXPECT_FALSE(entry.proxy()->effective_policy().Has(kStackConfidentiality));
}

TEST_F(DipcTest, HighPolicyCostsMoreThanLow) {
  auto measure = [&](IsolationPolicy policy) {
    hw::Machine machine(1);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    Dipc dipc(kernel);
    os::Process& a = dipc.CreateDipcProcess("a");
    os::Process& b = dipc.CreateDipcProcess("b");
    EntryDesc d{.name = "f", .signature = {}, .policy = policy,
                .fn = [](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 0; }};
    auto handle = dipc.EntryRegister(b, *dipc.DomDefault(b), {d});
    auto req = dipc.EntryRequest(a, *handle.value(), {{EntrySignature{}, policy}});
    auto grant = dipc.GrantCreate(*dipc.DomDefault(a), *req.value().proxy_domain);
    DIPC_CHECK(grant.ok());
    ProxyRef entry = req.value().proxies[0];
    double total = 0;
    kernel.Spawn(a, "m", [&](os::Env env) -> sim::Task<void> {
      (void)co_await entry.Call(env, CallArgs{});  // warm caches
      double t0 = env.kernel->now().nanos();
      for (int i = 0; i < 100; ++i) {
        (void)co_await entry.Call(env, CallArgs{});
      }
      total = env.kernel->now().nanos() - t0;
    });
    kernel.Run();
    return total / 100;
  };
  double low = measure(IsolationPolicy::Low());
  double high = measure(IsolationPolicy::High());
  EXPECT_GT(high, low * 1.3) << "low=" << low << " high=" << high;
  // Cross-process Low sits in the paper's neighborhood (~57 ns; ±50%).
  EXPECT_GT(low, 25.0);
  EXPECT_LT(low, 90.0);
}

TEST_F(DipcTest, ArgumentsPassByReferenceViaCapability) {
  // db's entry reads the caller's buffer through a capability — no copies.
  auto web_dom = dipc_.DomDefault(web_);
  auto buf = dipc_.DomMmap(web_, *web_dom, 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(buf.ok());
  ErrorCode callee_access = ErrorCode::kInvalidArgument;
  ProxyRef entry = MakeEntry([&](os::Env env, CallArgs args) -> sim::Task<uint64_t> {
    auto s = co_await env.kernel->TouchUser(env, args.regs[0], args.regs[1],
                                            hw::AccessType::kRead);
    callee_access = s.code();
    co_return 0;
  });
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    // Caller mints a read capability over its buffer and passes the pointer
    // in registers (the capability travels in the capability registers).
    sim::Duration cost;
    auto cap = env.kernel->codoms().CapFromApl(env.self->last_cpu(),
                                               env.self->process().page_table(),
                                               env.self->cap_ctx(), buf.value(), 256,
                                               codoms::Perm::kRead, codoms::CapType::kSync, &cost);
    EXPECT_TRUE(cap.ok());
    env.self->cap_ctx().regs.Set(0, cap.value());
    CallArgs args;
    args.regs[0] = buf.value();
    args.regs[1] = 256;
    (void)co_await entry.Call(env, args);
  });
  EXPECT_EQ(callee_access, ErrorCode::kOk);
}

TEST_F(DipcTest, CalleeCannotTouchCallerMemoryWithoutCapability) {
  auto web_dom = dipc_.DomDefault(web_);
  auto buf = dipc_.DomMmap(web_, *web_dom, 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(buf.ok());
  ErrorCode callee_access = ErrorCode::kOk;
  ProxyRef entry = MakeEntry([&](os::Env env, CallArgs args) -> sim::Task<uint64_t> {
    auto s = co_await env.kernel->TouchUser(env, args.regs[0], 64, hw::AccessType::kRead);
    callee_access = s.code();
    co_return 0;
  });
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    CallArgs args;
    args.regs[0] = buf.value();
    (void)co_await entry.Call(env, args);
  });
  EXPECT_EQ(callee_access, ErrorCode::kFault);  // P1: no grant, no capability
}

// ---- Crash unwinding (P3, §5.2.1) ----

TEST_F(DipcTest, CalleeCrashFlagsErrorToCaller) {
  ProxyRef entry = MakeEntry([](os::Env, CallArgs) -> sim::Task<uint64_t> {
    Dipc::Crash();
    co_return 0;  // unreachable
  });
  uint64_t result = 1;
  ErrorCode err = ErrorCode::kOk;
  bool continued = false;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    result = co_await entry.Call(env, CallArgs{});
    err = env.self->TakeError();
    EXPECT_EQ(&env.self->process(), &web_);  // current restored
    continued = true;
    co_return;
  });
  EXPECT_TRUE(continued);  // the caller thread survives the callee's crash
  EXPECT_EQ(result, 0u);
  EXPECT_EQ(err, ErrorCode::kCalleeFailed);
}

TEST_F(DipcTest, NestedCrashUnwindsToNearestLiveCaller) {
  os::Process& mid = dipc_.CreateDipcProcess("mid");
  // mid's entry calls db's entry, which crashes.
  ProxyRef db_entry = MakeEntry([](os::Env, CallArgs) -> sim::Task<uint64_t> {
    Dipc::Crash(ErrorCode::kCalleeFailed);
    co_return 0;
  });
  // Wire db_entry so `mid` can call it too.
  auto grant = dipc_.GrantCreate(*dipc_.DomDefault(mid),
                                 std::make_shared<DomainHandle>(
                                     db_entry.proxy()->proxy_domain(), DomPerm::kCall)
                                     .operator*());
  ASSERT_TRUE(grant.ok());
  ErrorCode mid_err = ErrorCode::kOk;
  EntryDesc mid_desc{.name = "mid", .signature = {}, .policy = {},
                     .fn = [&](os::Env env, CallArgs) -> sim::Task<uint64_t> {
                       uint64_t r = co_await db_entry.Call(env, CallArgs{});
                       mid_err = env.self->TakeError();  // mid sees the error
                       co_return r + 100;
                     }};
  auto mid_handle = dipc_.EntryRegister(mid, *dipc_.DomDefault(mid), {mid_desc});
  ASSERT_TRUE(mid_handle.ok());
  auto mid_req = dipc_.EntryRequest(web_, *mid_handle.value(), {{EntrySignature{}, {}}});
  ASSERT_TRUE(mid_req.ok());
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(web_), *mid_req.value().proxy_domain).ok());
  ProxyRef mid_entry = mid_req.value().proxies[0];
  uint64_t result = 0;
  ErrorCode web_err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    result = co_await mid_entry.Call(env, CallArgs{});
    web_err = env.self->TakeError();
  });
  // The crash stops at mid (nearest live caller); web sees a normal return.
  EXPECT_EQ(mid_err, ErrorCode::kCalleeFailed);
  EXPECT_EQ(web_err, ErrorCode::kOk);
  EXPECT_EQ(result, 100u);
}

TEST_F(DipcTest, CrashSkipsDeadCallersInChain) {
  os::Process& mid = dipc_.CreateDipcProcess("mid2");
  ProxyRef db_entry = MakeEntry([&](os::Env, CallArgs) -> sim::Task<uint64_t> {
    dipc_.KillProcess(mid);  // mid dies while the call chain is in flight
    Dipc::Crash(ErrorCode::kCalleeFailed);
    co_return 0;
  });
  ASSERT_TRUE(dipc_
                  .GrantCreate(*dipc_.DomDefault(mid),
                               *std::make_shared<DomainHandle>(
                                   db_entry.proxy()->proxy_domain(), DomPerm::kCall))
                  .ok());
  bool mid_resumed = false;
  EntryDesc mid_desc{.name = "mid", .signature = {}, .policy = {},
                     .fn = [&](os::Env env, CallArgs) -> sim::Task<uint64_t> {
                       uint64_t r = co_await db_entry.Call(env, CallArgs{});
                       mid_resumed = true;  // must never run: mid is dead
                       co_return r;
                     }};
  auto mid_handle = dipc_.EntryRegister(mid, *dipc_.DomDefault(mid), {mid_desc});
  auto mid_req = dipc_.EntryRequest(web_, *mid_handle.value(), {{EntrySignature{}, {}}});
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(web_), *mid_req.value().proxy_domain).ok());
  ProxyRef mid_entry = mid_req.value().proxies[0];
  ErrorCode web_err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    (void)co_await mid_entry.Call(env, CallArgs{});
    web_err = env.self->TakeError();
    EXPECT_EQ(&env.self->process(), &web_);
  });
  // The unwind skipped dead `mid` and resumed web with the flag (P3/§5.2.1).
  EXPECT_FALSE(mid_resumed);
  EXPECT_EQ(web_err, ErrorCode::kCalleeFailed);
}

TEST_F(DipcTest, DeathHooksMayReenterDuringKill) {
  // A hook may kill another process or register new hooks while a sweep is
  // running. Nested kills are queued and drained by the outermost
  // KillProcess, so every hook — including one added mid-sweep — still
  // observes every death, and the hook list is never mutated mid-iteration.
  os::Process& a = dipc_.CreateDipcProcess("hook-a");
  os::Process& b = dipc_.CreateDipcProcess("hook-b");
  std::vector<std::string> deaths;
  int late_fired = 0;
  dipc_.AddDeathHook([&](os::Process& dead) {
    if (&dead == &a) {
      dipc_.KillProcess(b);  // reentrant kill from inside the sweep
      dipc_.AddDeathHook([&](os::Process&) {
        ++late_fired;
        return true;
      });
    }
    deaths.push_back(dead.name());
    return true;
  });
  dipc_.KillProcess(a);
  EXPECT_FALSE(a.alive());
  EXPECT_FALSE(b.alive());
  // The cascaded kill was deferred past a's sweep, then swept with the full
  // merged hook list — a subsystem watching b must not miss b's death.
  EXPECT_EQ(deaths, (std::vector<std::string>{"hook-a", "hook-b"}));
  EXPECT_EQ(late_fired, 1);
}

TEST_F(DipcTest, ThrowingDeathHookDoesNotWedgeKills) {
  // Hooks are arbitrary callbacks; one that throws must propagate without
  // dropping the other registered hooks or leaving the kill machinery
  // permanently disarmed.
  os::Process& a = dipc_.CreateDipcProcess("throw-a");
  os::Process& b = dipc_.CreateDipcProcess("throw-b");
  bool arm_throw = true;
  int benign_fired = 0;
  dipc_.AddDeathHook([&](os::Process&) -> bool {
    if (arm_throw) {
      arm_throw = false;
      throw CalleeCrash{ErrorCode::kCalleeFailed};
    }
    return true;
  });
  dipc_.AddDeathHook([&](os::Process&) {
    ++benign_fired;
    return true;
  });
  EXPECT_THROW(dipc_.KillProcess(a), CalleeCrash);
  EXPECT_FALSE(a.alive());     // marked dead before the sweep started
  EXPECT_EQ(benign_fired, 1);  // later hooks still ran despite the throw
  dipc_.KillProcess(b);        // machinery recovered: both hooks fire again
  EXPECT_FALSE(b.alive());
  EXPECT_EQ(benign_fired, 2);
}

TEST_F(DipcTest, NestedKillSurvivesThrowingHook) {
  // A hook queues a nested kill and a later hook throws: the queued death
  // must still be swept through every hook (the exception resurfaces only
  // after the machinery is back at rest).
  os::Process& a = dipc_.CreateDipcProcess("nest-a");
  os::Process& b = dipc_.CreateDipcProcess("nest-b");
  std::vector<std::string> deaths;
  dipc_.AddDeathHook([&](os::Process& dead) {
    if (&dead == &a) {
      dipc_.KillProcess(b);
    }
    deaths.push_back(dead.name());
    return true;
  });
  dipc_.AddDeathHook([&](os::Process& dead) -> bool {
    if (&dead == &a) {
      throw CalleeCrash{ErrorCode::kCalleeFailed};
    }
    return true;
  });
  EXPECT_THROW(dipc_.KillProcess(a), CalleeCrash);
  EXPECT_FALSE(b.alive());
  EXPECT_EQ(deaths, (std::vector<std::string>{"nest-a", "nest-b"}));
}

TEST_F(DipcTest, KcsDepthTracksNesting) {
  size_t depth_inside = 0;
  ProxyRef entry = MakeEntry([&](os::Env env, CallArgs) -> sim::Task<uint64_t> {
    depth_inside = dipc_.thread_state(*env.self).kcs.depth();
    co_return 0;
  });
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    EXPECT_EQ(dipc_.thread_state(*env.self).kcs.depth(), 0u);
    (void)co_await entry.Call(env, CallArgs{});
    EXPECT_EQ(dipc_.thread_state(*env.self).kcs.depth(), 0u);
  });
  EXPECT_EQ(depth_inside, 1u);
}

// ---- Process tracker (§6.1.2) ----

TEST_F(DipcTest, TrackerColdThenFast) {
  ProxyRef entry = MakeEntry([](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 0; });
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    ThreadDipcState& ts = dipc_.thread_state(*env.self);
    (void)co_await entry.Call(env, CallArgs{});
    EXPECT_EQ(ts.tracker.stats().cold_upcalls, 1u);
    EXPECT_EQ(ts.tracker.stats().fast_hits, 0u);
    (void)co_await entry.Call(env, CallArgs{});
    (void)co_await entry.Call(env, CallArgs{});
    EXPECT_EQ(ts.tracker.stats().fast_hits, 2u);
    // Dropping the cache array (as a context switch may) falls back to the
    // per-thread tree: a warm hit, not another upcall.
    ts.tracker.InvalidateCacheArray();
    (void)co_await entry.Call(env, CallArgs{});
    EXPECT_EQ(ts.tracker.stats().warm_hits, 1u);
    EXPECT_EQ(ts.tracker.stats().cold_upcalls, 1u);
  });
}

TEST_F(DipcTest, PrimaryThreadsGetPerProcessIds) {
  os::Thread* t1 = nullptr;
  os::Thread* t2 = nullptr;
  kernel_.Spawn(web_, "a", [&](os::Env env) -> sim::Task<void> {
    t1 = env.self;
    co_return;
  });
  kernel_.Spawn(web_, "b", [&](os::Env env) -> sim::Task<void> {
    t2 = env.self;
    co_return;
  });
  kernel_.Run();
  uint64_t id1 = dipc_.TidInProcess(*t1, db_);
  uint64_t id2 = dipc_.TidInProcess(*t2, db_);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(dipc_.TidInProcess(*t1, db_), id1);  // stable
  // Different target process, independent id space.
  EXPECT_EQ(dipc_.TidInProcess(*t1, web_), 1u);
}

// ---- Timeouts (§5.4, implemented as the extension) ----

TEST_F(DipcTest, TimeoutRequiresStackConfidentiality) {
  ProxyRef entry = MakeEntry([](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 0; });
  ErrorCode err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    (void)co_await entry.CallWithTimeout(env, CallArgs{}, Duration::Micros(10));
    err = env.self->TakeError();
  });
  EXPECT_EQ(err, ErrorCode::kNotSupported);
}

TEST_F(DipcTest, TimeoutSplitsThreadAndFlagsCaller) {
  IsolationPolicy pol{kStackConfidentiality};
  bool callee_finished = false;
  ProxyRef entry = MakeEntry(
      [&](os::Env env, CallArgs) -> sim::Task<uint64_t> {
        co_await env.kernel->Sleep(env, Duration::Millis(2));
        callee_finished = true;
        co_return 7;
      },
      pol, pol);
  ErrorCode err = ErrorCode::kOk;
  double caller_resumed_us = 0;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    uint64_t r = co_await entry.CallWithTimeout(env, CallArgs{}, Duration::Micros(100));
    err = env.self->TakeError();
    caller_resumed_us = env.kernel->now().micros();
    EXPECT_EQ(r, 0u);
  });
  EXPECT_EQ(err, ErrorCode::kTimedOut);
  EXPECT_LT(caller_resumed_us, 1000.0);  // caller resumed at ~100us, not 2ms
  EXPECT_TRUE(callee_finished);          // the split callee ran to completion
}

TEST_F(DipcTest, TimeoutNotHitReturnsNormally) {
  IsolationPolicy pol{kStackConfidentiality};
  ProxyRef entry = MakeEntry(
      [](os::Env env, CallArgs args) -> sim::Task<uint64_t> {
        co_await env.kernel->Spend(*env.self, Duration::Nanos(100), os::TimeCat::kUser);
        co_return args.regs[0] + 1;
      },
      pol, pol);
  uint64_t result = 0;
  ErrorCode err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    CallArgs args;
    args.regs[0] = 10;
    result = co_await entry.CallWithTimeout(env, args, Duration::Millis(5));
    err = env.self->TakeError();
  });
  EXPECT_EQ(result, 11u);
  EXPECT_EQ(err, ErrorCode::kOk);
}

// ---- Asynchronous calls (§5.4, extension) ----

TEST_F(DipcTest, AsyncCallRunsConcurrentlyWithCaller) {
  IsolationPolicy pol{kStackConfidentiality};
  ProxyRef entry = MakeEntry(
      [](os::Env env, CallArgs args) -> sim::Task<uint64_t> {
        co_await env.kernel->Spend(*env.self, Duration::Micros(50), os::TimeCat::kUser);
        co_return args.regs[0] * 2;
      },
      pol, pol);
  uint64_t result = 0;
  double caller_work_done_us = 0;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    CallArgs args;
    args.regs[0] = 8;
    ProxyRef::Pending pending = entry.CallAsync(env, args);
    // The caller overlaps its own work with the callee (one-sided comm.).
    co_await env.kernel->Spend(*env.self, Duration::Micros(50), os::TimeCat::kUser);
    caller_work_done_us = env.kernel->now().micros();
    result = co_await pending.Await(env);
    EXPECT_EQ(env.self->TakeError(), ErrorCode::kOk);
    // Overlap: total time well below the serialized 100 us.
    EXPECT_LT(env.kernel->now().micros(), caller_work_done_us + 40.0);
  });
  EXPECT_EQ(result, 16u);
}

TEST_F(DipcTest, AsyncCallRequiresStackConfidentiality) {
  ProxyRef entry = MakeEntry([](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 1; });
  ErrorCode err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    ProxyRef::Pending pending = entry.CallAsync(env, CallArgs{});
    EXPECT_TRUE(pending.done());  // refused synchronously
    (void)co_await pending.Await(env);
    err = env.self->TakeError();
  });
  EXPECT_EQ(err, ErrorCode::kNotSupported);
}

TEST_F(DipcTest, AsyncCallPropagatesCalleeCrash) {
  IsolationPolicy pol{kStackConfidentiality};
  ProxyRef entry = MakeEntry(
      [](os::Env, CallArgs) -> sim::Task<uint64_t> {
        Dipc::Crash();
        co_return 0;
      },
      pol, pol);
  ErrorCode err = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    ProxyRef::Pending pending = entry.CallAsync(env, CallArgs{});
    (void)co_await pending.Await(env);
    err = env.self->TakeError();
  });
  EXPECT_EQ(err, ErrorCode::kCalleeFailed);
}

TEST_F(DipcTest, MultipleAsyncCallsComplete) {
  IsolationPolicy pol{kStackConfidentiality};
  ProxyRef entry = MakeEntry(
      [](os::Env env, CallArgs args) -> sim::Task<uint64_t> {
        co_await env.kernel->Spend(*env.self, Duration::Micros(10), os::TimeCat::kUser);
        co_return args.regs[0] + 1;
      },
      pol, pol);
  uint64_t sum = 0;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    std::vector<ProxyRef::Pending> pendings;
    for (uint64_t i = 0; i < 4; ++i) {
      CallArgs args;
      args.regs[0] = i;
      pendings.push_back(entry.CallAsync(env, args));
    }
    for (auto& p : pendings) {
      sum += co_await p.Await(env);
      EXPECT_EQ(env.self->TakeError(), ErrorCode::kOk);
    }
  });
  EXPECT_EQ(sum, 1u + 2 + 3 + 4);
}

// ---- fork/exec (§6.1.3) ----

TEST_F(DipcTest, ForkDisablesDipcAndCopiesMappings) {
  auto va = dipc_.DomMmap(web_, *dipc_.DomDefault(web_), 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(va.ok());
  os::Process& child = dipc_.Fork(web_);
  EXPECT_FALSE(child.dipc_enabled());
  EXPECT_NE(child.page_table().id(), web_.page_table().id());
  // The mapping is visible in the child at the same VA (COW copy).
  ASSERT_NE(child.page_table().Lookup(va.value()), nullptr);
  EXPECT_EQ(child.page_table().Lookup(va.value())->frame,
            web_.page_table().Lookup(va.value())->frame);
}

TEST_F(DipcTest, ExecReenablesDipcAtUniqueAddress) {
  os::Process& child = dipc_.Fork(web_);
  hw::DomainTag old_domain = child.default_domain();
  dipc_.Exec(child, "newimg");
  EXPECT_TRUE(child.dipc_enabled());
  EXPECT_EQ(child.page_table().id(), dipc_.vas().page_table().id());
  EXPECT_NE(child.default_domain(), old_domain);
  // Loaded at a unique address: a fresh block, distinct from the parent's.
  auto child_va =
      dipc_.DomMmap(child, *dipc_.DomDefault(child), 4096, hw::PageFlags{.writable = true});
  auto parent_va =
      dipc_.DomMmap(web_, *dipc_.DomDefault(web_), 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(child_va.ok() && parent_va.ok());
  uint64_t distance = child_va.value() > parent_va.value()
                          ? child_va.value() - parent_va.value()
                          : parent_va.value() - child_va.value();
  EXPECT_GE(distance, GlobalVas::kBlockSize / 2);
}

// ---- Proxy templates (§6.1.1) ----

TEST(ProxyTemplates, LibraryShapeMatchesPaper) {
  // "around 12K templates (averaging at 600B each)".
  EXPECT_EQ(ProxyTemplateLibrary::Count(), 10752u);
  double total_bytes = 0;
  int n = 0;
  for (uint32_t bits = 0; bits < 64; ++bits) {
    for (uint32_t in = 0; in <= 6; ++in) {
      EntrySignature sig{.in_regs = in, .out_regs = 1, .stack_bytes = 64};
      for (bool cross : {false, true}) {
        total_bytes += ProxyTemplateLibrary::Select(sig, IsolationPolicy{bits}, cross).code_bytes;
        ++n;
      }
    }
  }
  double avg = total_bytes / n;
  EXPECT_GT(avg, 300.0);
  EXPECT_LT(avg, 900.0);
}

TEST(ProxyTemplates, SelectionIsDeterministicAndDistinct) {
  EntrySignature sig{.in_regs = 2, .out_regs = 1, .stack_bytes = 0};
  auto a = ProxyTemplateLibrary::Select(sig, IsolationPolicy::Low(), false);
  auto b = ProxyTemplateLibrary::Select(sig, IsolationPolicy::Low(), false);
  auto c = ProxyTemplateLibrary::Select(sig, IsolationPolicy::High(), false);
  auto d = ProxyTemplateLibrary::Select(sig, IsolationPolicy::Low(), true);
  EXPECT_EQ(a.id, b.id);
  EXPECT_NE(a.id, c.id);
  EXPECT_NE(a.id, d.id);
}

TEST(ProxyTemplates, InstantiationCostPositive) {
  hw::CostModel cm;
  auto t = ProxyTemplateLibrary::Select(EntrySignature{}, IsolationPolicy::High(), true);
  EXPECT_GT(ProxyTemplateLibrary::InstantiationCost(cm, t), Duration::Zero());
}

// ---- Resolution + loader (§5.3, §6.2.1) ----

TEST_F(DipcTest, LoaderPublishesAndImportsEntries) {
  Loader loader(dipc_);
  uint64_t served = 0;
  // db side: load a module exporting "query" and publish it.
  kernel_.Spawn(db_, "db-main", [&](os::Env env) -> sim::Task<void> {
    ModuleSpec spec;
    spec.name = "database";
    spec.entries.push_back(EntrySpec{
        .domain = "",
        .name = "query",
        .signature = {.in_regs = 1, .out_regs = 1, .stack_bytes = 0},
        .callee_policy = IsolationPolicy::Low(),
        .fn = [&](os::Env, CallArgs args) -> sim::Task<uint64_t> {
          ++served;
          co_return args.regs[0] + 1000;
        }});
    spec.publish_path = "/dipc/db";
    auto mod = loader.Load(env, std::move(spec));
    EXPECT_TRUE(mod.ok());
    co_return;
  });
  uint64_t result = 0;
  kernel_.Spawn(web_, "web-main", [&](os::Env env) -> sim::Task<void> {
    // Let the publisher come up first.
    co_await env.kernel->Sleep(env, Duration::Micros(50));
    // (Explicit vectors: GCC 12 mis-compiles braced-init-list temporaries in
    // coroutine call expressions.)
    std::vector<EntryExpectation> expected{
        {EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0}, IsolationPolicy::Low()}};
    std::vector<std::string> names{"query"};
    auto imported = co_await loader.ImportEntries(env, "/dipc/db", std::move(expected),
                                                  std::move(names));
    EXPECT_TRUE(imported.ok());
    CallArgs args;
    args.regs[0] = 5;
    result = co_await imported.value().by_name["query"].Call(env, args);
  });
  kernel_.Run();
  EXPECT_EQ(result, 1005u);
  EXPECT_EQ(served, 1u);
}

TEST_F(DipcTest, LoaderIntraProcessPerms) {
  Loader loader(dipc_);
  hw::VirtAddr plugin_va = 0;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    ModuleSpec spec;
    spec.name = "app";
    spec.domains.push_back(DomSpec{"plugin"});
    // App (default domain) may read the plugin's memory; not vice versa.
    spec.perms.push_back(PermSpec{"", "plugin", DomPerm::kRead});
    auto mod = loader.Load(env, std::move(spec));
    EXPECT_TRUE(mod.ok());
    auto plugin = mod.value().domain("plugin");
    EXPECT_NE(plugin, nullptr);
    if (plugin == nullptr) { co_return; }
    auto va = dipc_.DomMmap(web_, *plugin, 4096, hw::PageFlags{.writable = true});
    EXPECT_TRUE(va.ok());
    plugin_va = va.value();
    // The thread runs in the default domain: reads allowed, writes not.
    auto r = co_await env.kernel->TouchUser(env, plugin_va, 16, hw::AccessType::kRead);
    EXPECT_EQ(r.code(), ErrorCode::kOk);
    auto w = co_await env.kernel->TouchUser(env, plugin_va, 16, hw::AccessType::kWrite);
    EXPECT_EQ(w.code(), ErrorCode::kFault);
  });
}

TEST_F(DipcTest, ResolveUnknownPathFails) {
  ErrorCode code = ErrorCode::kOk;
  RunIn(web_, [&](os::Env env) -> sim::Task<void> {
    auto r = co_await EntryResolver::Resolve(env, "/nonexistent");
    code = r.code();
  });
  EXPECT_EQ(code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace dipc::core
