// Concurrency stress / property harness for the channel subsystem.
//
// Randomized multi-producer/multi-consumer runs over MpmcQueue::PushN/PopN
// and the Channel/FanOutChannel batch ops, with mixed batch sizes and
// mid-run KillProcess at a random (sub-operation-granularity) time. The sim
// is deterministic per seed, so every failure reproduces from the seed in
// the test trace.
//
// Invariants, whatever the interleaving:
//   - no value/message is lost or duplicated (orderly runs deliver exactly
//     the multiset pushed; killed runs deliver a duplicate-free subset);
//   - no slot leaks (after an orderly drain the producer can re-acquire the
//     whole pool in one batch);
//   - no capability outlives teardown: RevocationTable::live_count() == 0
//     (the live-grant refinement of "size() revoked ids only" — every
//     counter epoch moved past every snapshot ever handed out) and every
//     allocated counter was revoked at least once.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chan/channel.h"
#include "chan/fanin.h"
#include "chan/fanout.h"
#include "chan/mpmc_queue.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "fabric/fabric.h"
#include "hw/machine.h"
#include "obs/trace.h"
#include "os/deadline.h"
#include "os/kernel.h"
#include "sim/random.h"

namespace dipc::chan {
namespace {

using base::ErrorCode;
using sim::Duration;
using sim::Rng;

// Records the whole run of one seed into the global trace ring; when the
// seed's assertions failed, dumps the ring as Chrome trace JSON so the
// interleaving that broke the invariant is inspectable in chrome://tracing
// (the sim is deterministic per seed, so the trace IS the failing run).
class SeedTraceGuard {
 public:
  SeedTraceGuard(const char* test, uint64_t seed) : test_(test), seed_(seed) {
    obs::Trace().Enable();  // same capacity: re-enabling clears the prior seed
  }
  ~SeedTraceGuard() { obs::Trace().Disable(); }

  // Call at the end of the seed iteration; returns true when the seed failed
  // (stop iterating: HasFailure() is sticky, and later seeds would overwrite
  // the ring before anyone reads the dump).
  bool DumpIfFailed() {
    if (!::testing::Test::HasFailure()) {
      return false;
    }
    const std::string path =
        "chan_stress_" + std::string(test_) + "_seed" + std::to_string(seed_) + ".trace.json";
    if (obs::Trace().ExportChromeTrace(path)) {
      ADD_FAILURE() << "seed " << seed_ << " failed; trace ring dumped to " << path;
    } else {
      ADD_FAILURE() << "seed " << seed_ << " failed; trace ring dump to " << path
                    << " ALSO failed";
    }
    return true;
  }

 private:
  const char* test_;
  uint64_t seed_;
};

// --- MpmcQueue: randomized MPMC batch traffic, no loss, no duplication ---

TEST(ChanStress, MpmcQueueRandomBatchTrafficLosesAndDuplicatesNothing) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SeedTraceGuard trace_guard("mpmc", seed);
    Rng rng(seed);
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& proc = dipc.CreateDipcProcess("p");
    const uint32_t capacity = static_cast<uint32_t>(rng.UniformInt(1, 8));
    const int n_prod = static_cast<int>(rng.UniformInt(1, 3));
    const int n_cons = static_cast<int>(rng.UniformInt(1, 3));
    const int per_producer = 40 + static_cast<int>(rng.UniformInt(0, 40));
    MpmcQueue q(kernel, proc, capacity, proc.default_domain());
    std::vector<uint64_t> pushed;
    std::vector<uint64_t> popped;
    int producers_done = 0;
    // Producers push tagged values in randomly sized batches (some larger
    // than the queue capacity, so PushN must chunk and block mid-batch).
    for (int p = 0; p < n_prod; ++p) {
      uint64_t batch_seed = rng.Next();
      kernel.Spawn(
          proc, "producer",
          [&, p, batch_seed](os::Env env) -> sim::Task<void> {
            Rng prng(batch_seed);
            int sent = 0;
            while (sent < per_producer) {
              int n = static_cast<int>(
                  prng.UniformInt(1, std::min<uint64_t>(per_producer - sent, 6)));
              std::vector<uint64_t> vals;
              for (int i = 0; i < n; ++i) {
                vals.push_back((static_cast<uint64_t>(p) << 32) |
                               static_cast<uint64_t>(sent + i));
              }
              EXPECT_TRUE((co_await q.PushN(env, vals)).ok());
              pushed.insert(pushed.end(), vals.begin(), vals.end());
              sent += n;
              if (prng.Chance(0.3)) {
                co_await env.kernel->Sleep(env, Duration::Nanos(prng.UniformInt(10, 400)));
              }
            }
            if (++producers_done == n_prod) {
              q.Close();  // consumers drain, then see the close
            }
          },
          /*pin_cpu=*/static_cast<int>(p % 2));
    }
    for (int c = 0; c < n_cons; ++c) {
      uint64_t batch_seed = rng.Next();
      kernel.Spawn(
          proc, "consumer",
          [&, batch_seed](os::Env env) -> sim::Task<void> {
            Rng crng(batch_seed);
            while (true) {
              std::vector<uint64_t> out(crng.UniformInt(1, 6));
              auto n = co_await q.PopN(env, std::span(out));
              if (!n.ok()) {
                EXPECT_EQ(n.code(), ErrorCode::kBrokenChannel);
                co_return;
              }
              popped.insert(popped.end(), out.begin(), out.begin() + n.value());
              if (crng.Chance(0.3)) {
                co_await env.kernel->Sleep(env, Duration::Nanos(crng.UniformInt(10, 400)));
              }
            }
          },
          /*pin_cpu=*/static_cast<int>(2 + c % 2));
    }
    kernel.Run();
    // Exactly the pushed multiset came out: nothing lost, nothing doubled.
    ASSERT_EQ(popped.size(), pushed.size());
    std::vector<uint64_t> a = pushed, b = popped;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    std::set<uint64_t> uniq(b.begin(), b.end());
    EXPECT_EQ(uniq.size(), b.size()) << "duplicated value";
    EXPECT_EQ(q.size(), 0u);
    if (trace_guard.DumpIfFailed()) {
      break;
    }
  }
}

// --- Channel batch ops: orderly randomized runs deliver exactly-once and
// --- leak no slot ---

TEST(ChanStress, ChannelRandomBatchStreamDeliversExactlyOnceAndRecyclesPool) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SeedTraceGuard trace_guard("chan_stream", seed);
    Rng rng(seed);
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& prod = dipc.CreateDipcProcess("producer");
    os::Process& cons = dipc.CreateDipcProcess("consumer");
    const uint32_t slots = static_cast<uint32_t>(rng.UniformInt(2, 6));
    const int total = 60 + static_cast<int>(rng.UniformInt(0, 60));
    auto ch = Channel::Create(dipc, prod, cons, {.slots = slots, .buf_bytes = 4096});
    ASSERT_TRUE(ch.ok());
    std::shared_ptr<Channel> chan = ch.value();
    std::vector<uint64_t> received;
    bool pool_intact_after_drain = false;
    uint64_t prod_seed = rng.Next(), cons_seed = rng.Next();
    kernel.Spawn(
        prod, "producer",
        [&, chan, prod_seed](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          Rng prng(prod_seed);
          int sent = 0;
          while (sent < total) {
            uint32_t want = static_cast<uint32_t>(
                prng.UniformInt(1, std::min<uint64_t>(slots, total - sent)));
            auto bufs = co_await chan->AcquireBufBatch(env, want);
            DIPC_CHECK(bufs.ok());
            std::vector<SendItem> items;
            for (const SendBuf& b : bufs.value()) {
              chan->BindSendCap(*env.self, b);
              uint64_t msg_seq = static_cast<uint64_t>(sent + items.size());
              DIPC_CHECK(
                  k.UserWrite(*env.self, b.va, std::as_bytes(std::span(&msg_seq, 1))).ok());
              items.push_back(SendItem{b, 64});
            }
            DIPC_CHECK((co_await chan->SendBatch(env, items)).ok());
            sent += static_cast<int>(items.size());
            if (prng.Chance(0.25)) {
              co_await k.Sleep(env, Duration::Nanos(prng.UniformInt(20, 800)));
            }
          }
          // No slot leak: once the consumer drained and released everything,
          // the whole pool must be re-acquirable in one batch.
          while (static_cast<int>(received.size()) < total) {
            co_await k.Sleep(env, Duration::Micros(5));
          }
          auto all = co_await chan->AcquireBufBatch(env, slots);
          DIPC_CHECK(all.ok());
          pool_intact_after_drain = all.value().size() == slots;
          // Hand the pool back so teardown accounting stays clean.
          std::vector<SendItem> items;
          for (const SendBuf& b : all.value()) {
            chan->BindSendCap(*env.self, b);
            uint64_t z = 0;
            DIPC_CHECK(k.UserWrite(*env.self, b.va, std::as_bytes(std::span(&z, 1))).ok());
            items.push_back(SendItem{b, 8});
          }
          DIPC_CHECK((co_await chan->SendBatch(env, items)).ok());
          chan->Close();
        },
        /*pin_cpu=*/0);
    kernel.Spawn(
        cons, "consumer",
        [&, chan, cons_seed](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          Rng crng(cons_seed);
          while (true) {
            auto msgs =
                co_await chan->RecvBatch(env, static_cast<uint32_t>(crng.UniformInt(1, slots)));
            if (!msgs.ok()) {
              EXPECT_EQ(msgs.code(), ErrorCode::kBrokenChannel);
              co_return;
            }
            for (const Msg& m : msgs.value()) {
              chan->BindRecvCap(*env.self, m);
              uint64_t msg_seq = 0;
              DIPC_CHECK(
                  k.UserRead(*env.self, m.va, std::as_writable_bytes(std::span(&msg_seq, 1)))
                      .ok());
              if (m.len == 64) {  // the epilogue pool-check messages are len 8
                received.push_back(msg_seq);
              }
            }
            DIPC_CHECK((co_await chan->ReleaseBatch(env, msgs.value())).ok());
            if (crng.Chance(0.25)) {
              co_await k.Sleep(env, Duration::Nanos(crng.UniformInt(20, 800)));
            }
          }
        },
        /*pin_cpu=*/1);
    kernel.Run();
    // Exactly-once delivery in order (single producer thread, FIFO queue).
    ASSERT_EQ(received.size(), static_cast<size_t>(total));
    for (int i = 0; i < total; ++i) {
      EXPECT_EQ(received[i], static_cast<uint64_t>(i)) << "at " << i;
    }
    EXPECT_TRUE(pool_intact_after_drain) << "slot leaked: full pool not re-acquirable";
    // No capability survived the orderly teardown.
    EXPECT_EQ(chan->LiveGrantCount(), 0u);
    EXPECT_EQ(codoms.revocations().live_count(), 0u);
    if (trace_guard.DumpIfFailed()) {
      break;
    }
  }
}

// --- Channel batch ops under mid-run KillProcess: duplicate-free subset
// --- delivery and total grant revocation ---

TEST(ChanStress, ChannelRandomKillMidRunLeaksNoGrantAndNeverDuplicates) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SeedTraceGuard trace_guard("chan_kill", seed);
    Rng rng(seed);
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& prod = dipc.CreateDipcProcess("producer");
    os::Process& cons = dipc.CreateDipcProcess("consumer");
    const uint32_t slots = static_cast<uint32_t>(rng.UniformInt(2, 5));
    auto ch = Channel::Create(dipc, prod, cons, {.slots = slots, .buf_bytes = 4096});
    ASSERT_TRUE(ch.ok());
    std::shared_ptr<Channel> chan = ch.value();
    std::vector<uint64_t> received;
    uint64_t prod_seed = rng.Next(), cons_seed = rng.Next();
    const bool kill_producer = rng.Chance(0.5);
    const double kill_ns = static_cast<double>(rng.UniformInt(200, 30000));
    kernel.Spawn(
        prod, "producer",
        [&, chan, prod_seed](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          Rng prng(prod_seed);
          uint64_t msg_seq = 0;
          while (true) {
            uint32_t want = static_cast<uint32_t>(prng.UniformInt(1, slots));
            auto bufs = co_await chan->AcquireBufBatch(env, want);
            if (!bufs.ok()) {
              EXPECT_EQ(bufs.code(), ErrorCode::kCalleeFailed);
              co_return;
            }
            std::vector<SendItem> items;
            for (const SendBuf& b : bufs.value()) {
              chan->BindSendCap(*env.self, b);
              uint64_t v = msg_seq + items.size();
              if (!k.UserWrite(*env.self, b.va, std::as_bytes(std::span(&v, 1))).ok()) {
                co_return;  // killed between acquire and fill
              }
              items.push_back(SendItem{b, 64});
            }
            auto sent = co_await chan->SendBatch(env, items);
            if (!sent.ok()) {
              EXPECT_EQ(sent.code(), ErrorCode::kCalleeFailed);
              co_return;
            }
            msg_seq += items.size();
          }
        },
        /*pin_cpu=*/0);
    kernel.Spawn(
        cons, "consumer",
        [&, chan, cons_seed](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          Rng crng(cons_seed);
          while (true) {
            auto msgs =
                co_await chan->RecvBatch(env, static_cast<uint32_t>(crng.UniformInt(1, slots)));
            if (!msgs.ok()) {
              EXPECT_EQ(msgs.code(), ErrorCode::kCalleeFailed);
              co_return;
            }
            for (const Msg& m : msgs.value()) {
              chan->BindRecvCap(*env.self, m);
              uint64_t msg_seq = 0;
              // The read fails if the kill revoked the grant mid-batch; the
              // message then counts as undelivered (not a duplicate risk).
              if (k.UserRead(*env.self, m.va, std::as_writable_bytes(std::span(&msg_seq, 1)))
                      .ok()) {
                received.push_back(msg_seq);
              }
            }
            auto rel = co_await chan->ReleaseBatch(env, msgs.value());
            if (!rel.ok()) {
              EXPECT_EQ(rel.code(), ErrorCode::kCalleeFailed);
              co_return;
            }
          }
        },
        /*pin_cpu=*/1);
    os::Process& killer = dipc.CreateDipcProcess("killer");
    kernel.Spawn(
        killer, "killer",
        [&](os::Env env) -> sim::Task<void> {
          co_await env.kernel->Sleep(env, Duration::Nanos(kill_ns));
          dipc.KillProcess(kill_producer ? prod : cons);
        },
        /*pin_cpu=*/2);
    kernel.Run();
    // Delivered messages form a duplicate-free prefix-subset of the stream.
    std::set<uint64_t> uniq(received.begin(), received.end());
    EXPECT_EQ(uniq.size(), received.size()) << "duplicated message";
    // Teardown revoked every grant: nothing live, and every counter ever
    // allocated was revoked at least once (an epoch still at 0 is a leak).
    EXPECT_EQ(chan->LiveGrantCount(), 0u);
    EXPECT_EQ(codoms.revocations().live_count(), 0u);
    const codoms::RevocationTable& rt = codoms.revocations();
    for (uint64_t id = 0; id < rt.size(); ++id) {
      EXPECT_GE(rt.Epoch(id), 1u) << "unrevoked counter " << id;
    }
    if (trace_guard.DumpIfFailed()) {
      break;
    }
  }
}

// --- Fan-out under randomized receiver/producer kills: per-receiver
// --- teardown, group survival, no grant leaks ---

TEST(ChanStress, FanOutRandomKillsRevokePerReceiverAndLeakNothing) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SeedTraceGuard trace_guard("fanout_kill", seed);
    Rng rng(seed);
    hw::Machine machine(6);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& prod = dipc.CreateDipcProcess("producer");
    const uint32_t n_recv = static_cast<uint32_t>(rng.UniformInt(2, 4));
    std::vector<os::Process*> receivers;
    for (uint32_t r = 0; r < n_recv; ++r) {
      receivers.push_back(&dipc.CreateDipcProcess("worker"));
    }
    const uint32_t slots = static_cast<uint32_t>(rng.UniformInt(2, 6));
    const bool drop_policy = rng.Chance(0.5);
    auto ch = FanOutChannel::Create(
        dipc, prod, receivers,
        {.slots = slots, .buf_bytes = 4096,
         .lag_policy = drop_policy ? LagPolicy::kDropSlowest : LagPolicy::kBlock});
    ASSERT_TRUE(ch.ok());
    std::shared_ptr<FanOutChannel> fan = ch.value();
    std::vector<std::vector<uint64_t>> got(n_recv);
    for (uint32_t r = 0; r < n_recv; ++r) {
      uint64_t rseed = rng.Next();
      kernel.Spawn(
          *receivers[r], "worker",
          [&, fan, r, rseed](os::Env env) -> sim::Task<void> {
            os::Kernel& k = *env.kernel;
            Rng crng(rseed);
            while (true) {
              auto msgs = co_await fan->RecvBatch(
                  env, r, static_cast<uint32_t>(crng.UniformInt(1, slots)));
              if (!msgs.ok()) {
                co_return;
              }
              for (const Msg& m : msgs.value()) {
                fan->BindRecvCap(*env.self, r, m);
                uint64_t msg_seq = 0;
                if (k.UserRead(*env.self, m.va,
                               std::as_writable_bytes(std::span(&msg_seq, 1)))
                        .ok()) {
                  got[r].push_back(msg_seq);
                }
              }
              if (!(co_await fan->ReleaseBatch(env, r, msgs.value())).ok()) {
                co_return;
              }
              if (crng.Chance(0.3)) {
                co_await k.Sleep(env, Duration::Nanos(crng.UniformInt(20, 900)));
              }
            }
          },
          /*pin_cpu=*/static_cast<int>(1 + r));
    }
    uint64_t pseed = rng.Next();
    const bool shard_mode = rng.Chance(0.4);
    kernel.Spawn(
        prod, "producer",
        [&, fan, pseed, shard_mode](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          Rng prng(pseed);
          uint64_t msg_seq = 0;
          for (int round = 0; round < 120; ++round) {
            auto buf = co_await fan->AcquireBuf(env);
            if (!buf.ok()) {
              co_return;
            }
            if (!k.UserWrite(*env.self, buf.value().va,
                             std::as_bytes(std::span(&msg_seq, 1)))
                     .ok()) {
              co_return;
            }
            // On a dead-shard failure the buffer stays owned (broken() ==
            // kOk contract): retry it on the next live shard; give it back
            // with AbandonBuf when nobody is left — dropping it on the
            // floor would leak the slot and a live write grant, which the
            // end-of-run assertions below would catch.
            bool sent = false;
            while (fan->broken() == ErrorCode::kOk) {
              base::Status s = ErrorCode::kCalleeFailed;
              if (shard_mode) {
                uint32_t shard = fan->NextShard();
                if (shard >= fan->receiver_count()) {
                  break;
                }
                s = co_await fan->SendTo(env, buf.value(), 64, shard);
              } else {
                s = co_await fan->Send(env, buf.value(), 64);
              }
              if (s.ok()) {
                sent = true;
                break;
              }
              if (s.code() != ErrorCode::kCalleeFailed ||
                  fan->live_receiver_count() == 0) {
                break;
              }
            }
            if (!sent) {
              if (fan->broken() == ErrorCode::kOk) {
                (void)co_await fan->AbandonBuf(env, buf.value());
              }
              co_return;
            }
            ++msg_seq;
            if (prng.Chance(0.2)) {
              co_await k.Sleep(env, Duration::Nanos(prng.UniformInt(20, 600)));
            }
          }
          fan->Close();
        },
        /*pin_cpu=*/0);
    // Killer: one or two random victims (possibly the producer) at random
    // times.
    os::Process& killer = dipc.CreateDipcProcess("killer");
    const int kills = 1 + (rng.Chance(0.4) ? 1 : 0);
    std::vector<std::pair<double, int>> plan;  // (ns, victim: -1 producer)
    for (int i = 0; i < kills; ++i) {
      int victim = rng.Chance(0.25) ? -1 : static_cast<int>(rng.UniformInt(0, n_recv - 1));
      plan.emplace_back(static_cast<double>(rng.UniformInt(300, 40000)), victim);
    }
    std::sort(plan.begin(), plan.end());
    kernel.Spawn(
        killer, "killer",
        [&, plan](os::Env env) -> sim::Task<void> {
          double elapsed = 0;
          for (const auto& [at_ns, victim] : plan) {
            if (at_ns > elapsed) {
              co_await env.kernel->Sleep(env, Duration::Nanos(at_ns - elapsed));
              elapsed = at_ns;
            }
            os::Process* target = victim < 0 ? &prod : receivers[victim];
            dipc.KillProcess(*target);
            if (victim >= 0) {
              // Per-receiver revocation is immediate and complete.
              EXPECT_EQ(codoms.revocations().LiveCountForOwner(
                            fan->receiver_owner(static_cast<uint32_t>(victim))),
                        0u);
            }
          }
        },
        /*pin_cpu=*/5);
    kernel.Run();
    // Per receiver: duplicate-free, and (FIFO per receiver) strictly
    // increasing sequence numbers.
    for (uint32_t r = 0; r < n_recv; ++r) {
      for (size_t i = 1; i < got[r].size(); ++i) {
        EXPECT_LT(got[r][i - 1], got[r][i]) << "receiver " << r << " order/duplicate";
      }
    }
    // Nothing survives: every grant of every (dead or live) receiver and
    // the producer was revoked by release or teardown.
    EXPECT_EQ(fan->LiveGrantCount(), 0u);
    EXPECT_EQ(codoms.revocations().live_count(), 0u);
    const codoms::RevocationTable& rt = codoms.revocations();
    for (uint64_t id = 0; id < rt.size(); ++id) {
      EXPECT_GE(rt.Epoch(id), 1u) << "unrevoked counter " << id;
    }
    if (trace_guard.DumpIfFailed()) {
      break;
    }
  }
}

// --- FanInChannel: randomized M->1 traffic with mid-run kills ---

TEST(ChanStress, FanInRandomKillsExciseProducersAndLeakNothing) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SeedTraceGuard trace_guard("fanin_kill", seed);
    Rng rng(seed);
    hw::Machine machine(6);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    const uint32_t n_prod = static_cast<uint32_t>(rng.UniformInt(2, 4));
    std::vector<os::Process*> producers;
    for (uint32_t p = 0; p < n_prod; ++p) {
      producers.push_back(&dipc.CreateDipcProcess("client"));
    }
    os::Process& cons = dipc.CreateDipcProcess("server");
    const uint32_t slots = static_cast<uint32_t>(rng.UniformInt(2, 6));
    const uint32_t credits = rng.Chance(0.5) ? static_cast<uint32_t>(rng.UniformInt(1, slots)) : 0;
    auto ch = FanInChannel::Create(dipc, producers, cons,
                                   {.slots = slots, .buf_bytes = 4096, .credits = credits});
    ASSERT_TRUE(ch.ok());
    std::shared_ptr<FanInChannel> fan = ch.value();
    std::vector<std::vector<uint64_t>> got(n_prod);
    uint64_t cseed = rng.Next();
    kernel.Spawn(
        cons, "server",
        [&, fan, cseed](os::Env env) -> sim::Task<void> {
          os::Kernel& k = *env.kernel;
          Rng crng(cseed);
          // Bound the whole drain: once the traffic (and the kills) are
          // over, the timeout closes the group so the run always ends.
          const os::Deadline dl = os::Deadline::After(k.now(), Duration::Micros(150));
          while (true) {
            auto msgs = co_await fan->RecvBatch(
                env, static_cast<uint32_t>(crng.UniformInt(1, slots)), dl);
            if (!msgs.ok()) {
              if (msgs.code() == ErrorCode::kTimedOut) {
                fan->Close();
              }
              co_return;
            }
            for (const Msg& m : msgs.value()) {
              fan->BindRecvCap(*env.self, m);
              uint64_t tagged[2] = {0, 0};  // {producer, seq}
              if (k.UserRead(*env.self, m.va, std::as_writable_bytes(std::span(tagged))).ok() &&
                  tagged[0] < n_prod) {
                got[tagged[0]].push_back(tagged[1]);
              }
            }
            if (!(co_await fan->ReleaseBatch(env, msgs.value())).ok()) {
              co_return;
            }
            if (crng.Chance(0.3)) {
              co_await k.Sleep(env, Duration::Nanos(crng.UniformInt(20, 900)));
            }
          }
        },
        /*pin_cpu=*/0);
    for (uint32_t p = 0; p < n_prod; ++p) {
      uint64_t pseed = rng.Next();
      kernel.Spawn(
          *producers[p], "client",
          [&, fan, p, pseed](os::Env env) -> sim::Task<void> {
            os::Kernel& k = *env.kernel;
            Rng prng(pseed);
            uint64_t seq = 0;
            for (int round = 0; round < 60; ++round) {
              auto buf = co_await fan->AcquireBuf(env, p);
              if (!buf.ok()) {
                co_return;  // excised, broken or closed
              }
              uint64_t tagged[2] = {p, seq};
              if (!k.UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(tagged)))
                       .ok()) {
                co_return;
              }
              if (!(co_await fan->Send(env, p, buf.value(), 64)).ok()) {
                // While the group is healthy the buffer stays ours on a
                // failed publish: hand it back instead of leaking the slot.
                if (fan->broken() == ErrorCode::kOk) {
                  (void)co_await fan->AbandonBuf(env, p, buf.value());
                }
                co_return;
              }
              ++seq;
              if (prng.Chance(0.2)) {
                co_await k.Sleep(env, Duration::Nanos(prng.UniformInt(20, 600)));
              }
            }
          },
          /*pin_cpu=*/static_cast<int>(1 + p % 4));
    }
    // Killer: one or two victims — usually producers (individual excision),
    // sometimes the consumer (whole-group breakage).
    os::Process& killer = dipc.CreateDipcProcess("killer");
    const int kills = 1 + (rng.Chance(0.4) ? 1 : 0);
    std::vector<std::pair<double, int>> plan;  // (ns, victim: -1 consumer)
    for (int i = 0; i < kills; ++i) {
      int victim = rng.Chance(0.2) ? -1 : static_cast<int>(rng.UniformInt(0, n_prod - 1));
      plan.emplace_back(static_cast<double>(rng.UniformInt(300, 40000)), victim);
    }
    std::sort(plan.begin(), plan.end());
    kernel.Spawn(
        killer, "killer",
        [&, plan](os::Env env) -> sim::Task<void> {
          double elapsed = 0;
          for (const auto& [at_ns, victim] : plan) {
            if (at_ns > elapsed) {
              co_await env.kernel->Sleep(env, Duration::Nanos(at_ns - elapsed));
              elapsed = at_ns;
            }
            os::Process* target = victim < 0 ? &cons : producers[victim];
            dipc.KillProcess(*target);
            // Excision (or breakage) drains the victim's owner key
            // immediately and completely.
            const uint64_t owner = victim < 0
                                       ? fan->consumer_owner()
                                       : fan->producer_owner(static_cast<uint32_t>(victim));
            EXPECT_EQ(codoms.revocations().LiveCountForOwner(owner), 0u);
          }
        },
        /*pin_cpu=*/5);
    kernel.Run();
    // Per producer: a duplicate-free, strictly increasing (FIFO) subset of
    // what that producer published.
    for (uint32_t p = 0; p < n_prod; ++p) {
      for (size_t i = 1; i < got[p].size(); ++i) {
        EXPECT_LT(got[p][i - 1], got[p][i]) << "producer " << p << " order/duplicate";
      }
    }
    EXPECT_EQ(fan->LiveGrantCount(), 0u);
    EXPECT_EQ(codoms.revocations().live_count(), 0u);
    const codoms::RevocationTable& rt = codoms.revocations();
    for (uint64_t id = 0; id < rt.size(); ++id) {
      EXPECT_GE(rt.Epoch(id), 1u) << "unrevoked counter " << id;
    }
    if (trace_guard.DumpIfFailed()) {
      break;
    }
  }
}

// --- ServiceFabric: randomized N x M calls with mid-run worker kills ---

TEST(ChanStress, FabricRandomWorkerKillsKeepCompletionsExactlyOnce) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SeedTraceGuard trace_guard("fabric_kill", seed);
    Rng rng(seed);
    hw::Machine machine(6);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    const uint32_t n_cli = static_cast<uint32_t>(rng.UniformInt(2, 3));
    const uint32_t n_wrk = static_cast<uint32_t>(rng.UniformInt(2, 3));
    std::vector<os::Process*> clients;
    std::vector<os::Process*> workers;
    for (uint32_t c = 0; c < n_cli; ++c) {
      clients.push_back(&dipc.CreateDipcProcess("tenant"));
    }
    for (uint32_t w = 0; w < n_wrk; ++w) {
      workers.push_back(&dipc.CreateDipcProcess("worker"));
    }
    auto f = fabric::ServiceFabric::Create(
        dipc, clients, workers,
        {.req_slots = 4, .req_bytes = 64, .resp_slots = 4, .resp_bytes = 64,
         .call_deadline = Duration::Micros(200), .max_call_retries = 10});
    ASSERT_TRUE(f.ok());
    std::shared_ptr<fabric::ServiceFabric> fab = f.value();
    fab->StartAllDispatchers();
    fabric::ServiceFabric::Handler echo = [](os::Env, const chan::Msg&) -> sim::Task<void> {
      co_return;
    };
    for (uint32_t w = 0; w < n_wrk; ++w) {
      for (uint32_t c = 0; c < n_cli; ++c) {
        kernel.Spawn(*workers[w], "serve", [fab, c, w, echo](os::Env env) -> sim::Task<void> {
          co_await fab->Serve(env, c, w, echo);
        });
      }
    }
    // Kill plan first, so the expectations below know which clients stay
    // healthy. Never kill every worker: the survivors must absorb the load.
    const int kills = 1 + (rng.Chance(0.4) ? 1 : 0);
    std::vector<std::pair<double, int>> plan;  // (ns, victim: -1 a client)
    int killed_client = -1;
    for (int i = 0; i < kills && i < static_cast<int>(n_wrk) - 1 + 1; ++i) {
      if (rng.Chance(0.25) && killed_client < 0) {
        killed_client = static_cast<int>(rng.UniformInt(0, n_cli - 1));
        plan.emplace_back(static_cast<double>(rng.UniformInt(300, 50000)), -1);
      } else if (static_cast<int>(rng.UniformInt(0, n_wrk - 1)) == 0 || kills == 1) {
        plan.emplace_back(static_cast<double>(rng.UniformInt(300, 50000)), 0);
      } else {
        plan.emplace_back(static_cast<double>(rng.UniformInt(300, 50000)), 1);
      }
    }
    std::sort(plan.begin(), plan.end());
    uint64_t ok_calls = 0;
    int remaining = static_cast<int>(n_cli);
    for (uint32_t c = 0; c < n_cli; ++c) {
      uint64_t cseed = rng.Next();
      const bool healthy = killed_client < 0 || static_cast<uint32_t>(killed_client) != c;
      kernel.Spawn(*clients[c], "web", [&, fab, c, cseed, healthy](os::Env env) -> sim::Task<void> {
        Rng crng(cseed);
        for (int i = 0; i < 12; ++i) {
          auto s = co_await fab->Call(env, c, 16);
          if (s.ok()) {
            ++ok_calls;
          } else if (healthy) {
            // With at least one worker alive at all times, a healthy
            // client's calls must keep completing through the reshards.
            ADD_FAILURE() << "tenant " << c << " call " << i << " failed: "
                          << static_cast<int>(s.code());
          }
          if (crng.Chance(0.3)) {
            co_await env.kernel->Sleep(env, Duration::Nanos(crng.UniformInt(50, 800)));
          }
        }
        if (--remaining == 0) {
          fab->Close();
        }
      });
    }
    os::Process& killer = dipc.CreateDipcProcess("killer");
    kernel.Spawn(killer, "killer", [&, plan](os::Env env) -> sim::Task<void> {
      double elapsed = 0;
      for (const auto& [at_ns, victim] : plan) {
        if (at_ns > elapsed) {
          co_await env.kernel->Sleep(env, Duration::Nanos(at_ns - elapsed));
          elapsed = at_ns;
        }
        dipc.KillProcess(victim < 0 ? *clients[killed_client] : *workers[victim]);
      }
    });
    kernel.Run();
    // Exactly-once: completions() counts exactly the Calls that returned
    // kOk; late completions of superseded attempts were dropped at the
    // dispatcher (counted as duplicates, never delivered twice).
    EXPECT_EQ(fab->completions(), ok_calls);
    EXPECT_EQ(fab->calls(), static_cast<uint64_t>(n_cli) * 12);
    if (killed_client < 0) {
      // No client died: every Call either completed or was counted failed.
      EXPECT_EQ(fab->completions() + fab->failures(), fab->calls());
    }
    for (uint32_t c = 0; c < n_cli; ++c) {
      EXPECT_EQ(fab->request_plane(c)->LiveGrantCount(), 0u) << "tenant " << c;
      EXPECT_EQ(fab->response_plane(c)->LiveGrantCount(), 0u) << "tenant " << c;
    }
    EXPECT_EQ(codoms.revocations().live_count(), 0u);
    if (trace_guard.DumpIfFailed()) {
      break;
    }
  }
}

}  // namespace
}  // namespace dipc::chan
