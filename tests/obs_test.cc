// Unit tests for the observability layer (src/obs/): registry handle
// identity and kind collisions, concurrent counter increments from real
// threads (the TSan gate hammers this), histogram percentiles, snapshot
// JSON well-formedness, trace-ring wraparound semantics, Chrome trace
// export, and the end-to-end wiring from a live channel into the registry.
//
// Every test also compiles (and most still assert something) under
// -DDIPC_OBS_OFF, guarded where the assertions require live metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/check.h"
#include "chan/channel.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "fabric/fabric.h"
#include "hw/machine.h"
#include "obs/metric_schema.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "os/accounting.h"
#include "os/kernel.h"

namespace dipc::obs {
namespace {

// Minimal structural JSON validator: enough to catch unbalanced braces,
// unterminated strings and trailing commas in the snapshot/trace output
// without a JSON dependency.
bool JsonIsWellFormed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        prev_significant = c;
        break;
      case '}':
        if (prev_significant == ',' || stack.empty() || stack.back() != '{') {
          return false;
        }
        stack.pop_back();
        prev_significant = c;
        break;
      case ']':
        if (prev_significant == ',' || stack.empty() || stack.back() != '[') {
          return false;
        }
        stack.pop_back();
        prev_significant = c;
        break;
      case ',':
      case ':':
        prev_significant = c;
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) {
          prev_significant = c;
        }
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ObsJsonValidator, CatchesMalformedJson) {
  EXPECT_TRUE(JsonIsWellFormed("{}"));
  EXPECT_TRUE(JsonIsWellFormed(R"({"a": [1, 2], "b": {"c": "x,]}"}})"));
  EXPECT_FALSE(JsonIsWellFormed("{"));
  EXPECT_FALSE(JsonIsWellFormed("{\"a\": 1,}"));
  EXPECT_FALSE(JsonIsWellFormed("{\"a\": [1, 2}"));
  EXPECT_FALSE(JsonIsWellFormed("{\"a"));
}

TEST(ObsSchema, MetricPatternMatchesComponentRules) {
  // Exact names.
  EXPECT_TRUE(MetricPatternMatches("fault/injected", "fault/injected"));
  EXPECT_FALSE(MetricPatternMatches("fault/injected", "fault/injected/extra"));
  EXPECT_FALSE(MetricPatternMatches("fault/injected", "fault"));
  // '*' matches exactly one component.
  EXPECT_TRUE(MetricPatternMatches("chan/*/sends", "chan/42/sends"));
  EXPECT_FALSE(MetricPatternMatches("chan/*/sends", "chan/42/43/sends"));
  EXPECT_FALSE(MetricPatternMatches("chan/*/sends", "chan/sends"));
  // A trailing-'*' component matches by prefix.
  EXPECT_TRUE(MetricPatternMatches("os/sched/cpu*/runq_depth", "os/sched/cpu3/runq_depth"));
  EXPECT_TRUE(MetricPatternMatches("os/sched/cpu*/runq_depth", "os/sched/cpu/runq_depth"));
  EXPECT_FALSE(MetricPatternMatches("os/sched/cpu*/runq_depth", "os/sched/gpu3/runq_depth"));
  // A final '**' eats one or more remaining components.
  EXPECT_TRUE(MetricPatternMatches("fault/point/**", "fault/point/chan/send"));
  EXPECT_TRUE(MetricPatternMatches("fault/point/**", "fault/point/x"));
  EXPECT_FALSE(MetricPatternMatches("fault/point/**", "fault/point"));
  // Kind-aware schema lookup: the same name is only valid for its kind.
  EXPECT_TRUE(NameMatchesSchema("chan/7/desc/park_ns", MetricKind::kHistogram));
  EXPECT_FALSE(NameMatchesSchema("chan/7/desc/park_ns", MetricKind::kCounter));
  EXPECT_FALSE(NameMatchesSchema("definitely/not/in/schema", MetricKind::kCounter));
}

TEST(ObsSchema, OffSchemaRegistrationIsRecordedAndDrained) {
#ifdef DIPC_OBS_OFF
  GTEST_SKIP() << "observability compiled out (-DDIPC_OBS_OFF)";
#else
  Registry& reg = Registry::Default();
  // Other suites in this binary register test-local names; flush theirs so
  // this test only sees its own violation.
  (void)reg.TakeSchemaViolations();
  (void)reg.GetCounter("fault/injected");  // schema-conformant: no violation
  (void)reg.GetCounter("obs_schema_test/definitely/off/schema");
  std::vector<std::string> v = reg.TakeSchemaViolations();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("obs_schema_test/definitely/off/schema"), std::string::npos);
  EXPECT_NE(v[0].find("counter"), std::string::npos);  // says which kind
  // Drain-on-read: a second take is empty, and re-Get of an
  // already-registered name does not re-validate.
  (void)reg.GetCounter("obs_schema_test/definitely/off/schema");
  EXPECT_TRUE(reg.TakeSchemaViolations().empty());
#endif
}

TEST(ObsRegistry, SameNameReturnsSameHandle) {
  Registry& reg = Registry::Default();
  Counter* a = reg.GetCounter("obs_test/identity");
  Counter* b = reg.GetCounter("obs_test/identity");
  EXPECT_EQ(a, b);
  Histogram* h1 = reg.GetHistogram("obs_test/identity_h");
  Histogram* h2 = reg.GetHistogram("obs_test/identity_h");
  EXPECT_EQ(h1, h2);
}

TEST(ObsRegistry, KindCollisionReturnsDetachedHandle) {
  Registry& reg = Registry::Default();
  Counter* c = reg.GetCounter("obs_test/collide");
  ASSERT_NE(c, nullptr);
  // Same name, wrong kind: must not crash, must hand back a usable dummy.
  Gauge* g = reg.GetGauge("obs_test/collide");
  ASSERT_NE(g, nullptr);
  g->Set(42);
  c->Add();
#ifndef DIPC_OBS_OFF
  // The detached gauge must not shadow the real counter in the snapshot.
  std::string snap = reg.SnapshotJson();
  EXPECT_NE(snap.find("\"obs_test/collide\""), std::string::npos);
#endif
}

TEST(ObsRegistry, ConcurrentCounterIncrementsAreExact) {
  Registry& reg = Registry::Default();
  Counter* c = reg.GetCounter("obs_test/concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
#ifndef DIPC_OBS_OFF
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
#else
  EXPECT_EQ(c->value(), 0u);
#endif
}

TEST(ObsRegistry, ConcurrentHistogramRecordsKeepCountAndBounds) {
  Registry& reg = Registry::Default();
  Histogram* h = reg.GetHistogram("obs_test/concurrent_h");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(1.0 + t * 100.0 + (i % 7));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
#ifndef DIPC_OBS_OFF
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->min_ns(), 1u);
  EXPECT_GE(h->max_ns(), 300u);
#endif
}

TEST(ObsHistogram, PercentilesLandInTheRightBucketRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(10.0);  // bucket [8, 16)
  }
  h.Record(1000.0);  // one outlier, bucket [512, 1024)
#ifndef DIPC_OBS_OFF
  EXPECT_EQ(h.count(), 101u);
  double p50 = h.Percentile(50);
  EXPECT_GE(p50, 8.0);
  EXPECT_LT(p50, 16.0);
  // The p100 must be clamped to the observed max, not the bucket top.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
  EXPECT_EQ(h.min_ns(), 10u);
  EXPECT_EQ(h.max_ns(), 1000u);
#endif
}

TEST(ObsHistogram, ZeroAndNegativeSamplesLandInBucketZero) {
  Histogram h;
  h.Record(0.0);
  h.Record(-5.0);
#ifndef DIPC_OBS_OFF
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
#endif
}

TEST(ObsRegistry, SnapshotJsonIsWellFormed) {
  Registry& reg = Registry::Default();
  reg.GetCounter("obs_test/snap_c")->Add(3);
  reg.GetGauge("obs_test/snap_g")->Set(-7);
  reg.GetHistogram("obs_test/snap_h")->Record(12345.0);
  std::string snap = reg.SnapshotJson();
  EXPECT_TRUE(JsonIsWellFormed(snap)) << snap.substr(0, 400);
#ifndef DIPC_OBS_OFF
  EXPECT_NE(snap.find("\"obs_test/snap_c\": 3"), std::string::npos);
  EXPECT_NE(snap.find("\"obs_test/snap_g\": -7"), std::string::npos);
  EXPECT_NE(snap.find("\"obs_test/snap_h\""), std::string::npos);
#else
  EXPECT_EQ(snap, "{}");
#endif
}

TEST(ObsTrace, WraparoundKeepsTheNewestEvents) {
  TraceRing ring;
  ring.Enable(/*capacity_per_cpu=*/16);
  for (uint64_t i = 0; i < 100; ++i) {
    ring.Record(0, EventType::kSendBatch, 1, i, sim::Time::FromPicos(static_cast<int64_t>(i)));
  }
  ring.Disable();
#ifndef DIPC_OBS_OFF
  EXPECT_EQ(ring.recorded(0), 100u);
  EXPECT_EQ(ring.held(0), 16u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  // The survivors must be exactly the newest 16, in timestamp order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 84 + i);
  }
#else
  EXPECT_EQ(ring.recorded(0), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
#endif
}

TEST(ObsTrace, EventCostIsZeroWhileDisabled) {
  TraceRing ring;
  EXPECT_EQ(ring.event_cost(), sim::Duration::Zero());
  ring.Enable(8);
#ifndef DIPC_OBS_OFF
  EXPECT_EQ(ring.event_cost(), TraceRing::kEventCost);
  EXPECT_GT(TraceRing::kEventCost, sim::Duration::Zero());
#else
  EXPECT_EQ(ring.event_cost(), sim::Duration::Zero());
#endif
  ring.Disable();
  EXPECT_EQ(ring.event_cost(), sim::Duration::Zero());
}

TEST(ObsTrace, ConcurrentPerCpuRecordingIsRaceFree) {
  // One real thread per simulated CPU, honoring the single-writer-per-CPU
  // contract; TSan turns any cross-thread aliasing bug into a failure.
  TraceRing ring;
  ring.Enable(1024);
  constexpr int kCpus = 4;
  constexpr uint64_t kEvents = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kCpus);
  for (int cpu = 0; cpu < kCpus; ++cpu) {
    threads.emplace_back([&ring, cpu] {
      for (uint64_t i = 0; i < kEvents; ++i) {
        ring.Record(static_cast<uint32_t>(cpu), EventType::kRecvBatch, 7, i,
                    sim::Time::FromPicos(static_cast<int64_t>(i)));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ring.Disable();
#ifndef DIPC_OBS_OFF
  for (int cpu = 0; cpu < kCpus; ++cpu) {
    EXPECT_EQ(ring.recorded(static_cast<uint32_t>(cpu)), kEvents);
    EXPECT_EQ(ring.held(static_cast<uint32_t>(cpu)), 1024u);
  }
#endif
}

TEST(ObsTrace, ChromeTraceJsonIsWellFormedAndTyped) {
  TraceRing ring;
  ring.Enable(64);
  ring.Record(0, EventType::kProxyEnter, 3, 48, sim::Time::FromPicos(1000));
  ring.Record(1, EventType::kFutexPark, 4, 0, sim::Time::FromPicos(9000),
              sim::Duration::Picos(5000));
  ring.Disable();
  std::string json = ring.ChromeTraceJson();
  EXPECT_TRUE(JsonIsWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
#ifndef DIPC_OBS_OFF
  // Instant event for the enter, span ("X" with dur) for the park.
  EXPECT_NE(json.find("\"proxy_enter\""), std::string::npos);
  EXPECT_NE(json.find("\"futex_park\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
#endif
}

TEST(ObsTrace, EveryEventTypeHasAName) {
  for (int i = 0; i < kEventTypeCount; ++i) {
    EXPECT_STRNE(EventTypeName(static_cast<EventType>(i)), "unknown");
  }
}

// End-to-end: a live channel's traffic must land in the registry under the
// channel's own obs id, so "which tenant is stalling whom" is answerable
// from the snapshot alone.
TEST(ObsWiring, ChannelTrafficLandsInRegistryUnderItsObsId) {
  hw::Machine machine(4);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);
  os::Process& prod = dipc.CreateDipcProcess("producer");
  os::Process& cons = dipc.CreateDipcProcess("consumer");
  auto ch = chan::Channel::Create(dipc, prod, cons, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  chan::Channel& chan = *ch.value();
  constexpr int kMessages = 5;
  kernel.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < kMessages; ++i) {
      auto buf = co_await chan.AcquireBuf(env);
      EXPECT_TRUE(buf.ok());
      EXPECT_TRUE((co_await chan.Send(env, buf.value(), 64)).ok());
    }
  });
  kernel.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < kMessages; ++i) {
      auto msg = co_await chan.Recv(env);
      EXPECT_TRUE(msg.ok());
      EXPECT_TRUE((co_await chan.Release(env, msg.value())).ok());
    }
  });
  kernel.Run();
  EXPECT_EQ(chan.sends(), static_cast<uint64_t>(kMessages));
  const std::string prefix = "chan/" + std::to_string(chan.obs_id());
  Registry& reg = Registry::Default();
#ifndef DIPC_OBS_OFF
  EXPECT_EQ(reg.GetCounter(prefix + "/sends")->value(), static_cast<uint64_t>(kMessages));
  EXPECT_EQ(reg.GetCounter(prefix + "/recvs")->value(), static_cast<uint64_t>(kMessages));
  EXPECT_EQ(reg.GetCounter(prefix + "/acquires")->value(), static_cast<uint64_t>(kMessages));
  EXPECT_EQ(reg.GetCounter(prefix + "/releases")->value(), static_cast<uint64_t>(kMessages));
  EXPECT_EQ(reg.GetHistogram(prefix + "/send_batch")->count(),
            static_cast<uint64_t>(kMessages));
  // Capability churn mirrors the channel's own getters.
  EXPECT_EQ(reg.GetCounter(prefix + "/cold_mints")->value(), chan.cold_mints());
#else
  // Compiled out: handles exist but stay silent, and the member-variable
  // getters above still worked — the public API does not depend on obs.
  EXPECT_EQ(reg.GetCounter(prefix + "/sends")->value(), 0u);
#endif
}

// Shared scaffolding for the fabric tracing tests: one tenant, one worker,
// per-test kernel so trace/accounting state is isolated.
struct FabricRig {
  hw::Machine machine{6};
  codoms::Codoms codoms{machine};
  os::Kernel kernel{machine, codoms};
  core::Dipc dipc{kernel};
  std::vector<os::Process*> clients;
  std::vector<os::Process*> workers;
  std::shared_ptr<fabric::ServiceFabric> fab;

  explicit FabricRig(fabric::FabricConfig cfg = {.req_slots = 8,
                                                 .req_bytes = 64,
                                                 .resp_slots = 8,
                                                 .resp_bytes = 64}) {
    clients.push_back(&dipc.CreateDipcProcess("tenant"));
    workers.push_back(&dipc.CreateDipcProcess("worker"));
    auto f = fabric::ServiceFabric::Create(dipc, clients, workers, cfg);
    DIPC_CHECK(f.ok());
    fab = f.value();
    fab->StartAllDispatchers();
  }

  void SpawnServe(fabric::ServiceFabric::Handler handler) {
    auto f = fab;
    kernel.Spawn(*workers[0], "serve", [f, handler](os::Env env) -> sim::Task<void> {
      co_await f->Serve(env, 0, 0, handler);
    });
  }
};

// The tentpole's core property: a single fabric Call under tracing yields a
// span for every hop — client acquire, request send, worker recv, handler,
// response send, completion dispatch, plus the whole-operation span — all
// tagged with the SAME opid carried through the descriptor trace word.
TEST(ObsFabric, SingleCallHopSpansShareOneOpid) {
  FabricRig rig;
  Trace().Enable(1 << 14);
  Trace().Clear();
  rig.SpawnServe([](os::Env, const chan::Msg&) -> sim::Task<void> { co_return; });
  bool ok = false;
  auto fab = rig.fab;
  rig.kernel.Spawn(*rig.clients[0], "web", [&ok, fab](os::Env env) -> sim::Task<void> {
    ok = (co_await fab->Call(env, 0, 16)).ok();
    fab->Close();
  });
  rig.kernel.Run();
  Trace().Disable();
  EXPECT_TRUE(ok);
#ifndef DIPC_OBS_OFF
  std::vector<TraceEvent> events = Trace().Snapshot();
  uint64_t opid = 0;
  for (const TraceEvent& e : events) {
    if (e.type == EventType::kFabricDispatch && e.opid != 0) {
      opid = e.opid;
    }
  }
  ASSERT_NE(opid, 0u) << "no fabric_dispatch span recorded";
  std::set<EventType> hops;
  for (const TraceEvent& e : events) {
    // Single operation: every opid-tagged event belongs to it.
    if (e.opid != 0) {
      EXPECT_EQ(e.opid, opid);
      hops.insert(e.type);
    }
  }
  for (EventType t : {EventType::kReqAcquire, EventType::kReqSend, EventType::kWorkerRecv,
                      EventType::kHandler, EventType::kRespSend,
                      EventType::kCompletionDispatch, EventType::kFabricDispatch}) {
    EXPECT_TRUE(hops.count(t)) << "missing hop span: " << EventTypeName(t);
  }
  EXPECT_EQ(Trace().total_dropped(), 0u);
#endif
  Trace().Clear();
}

// Retries run under the SAME opid but with a distinct attempt byte, so the
// assembled per-request trace shows them as sibling tracks.
TEST(ObsFabric, RetriesAppearAsDistinctAttempts) {
  FabricRig rig({.req_slots = 8,
                 .req_bytes = 64,
                 .resp_slots = 8,
                 .resp_bytes = 64,
                 .call_deadline = sim::Duration::Micros(100),
                 .max_call_retries = 20});
  Trace().Enable(1 << 14);
  Trace().Clear();
  // The first request wedges its worker past the call deadline; the client
  // must retry (same opid, next attempt) until the late response lands.
  auto slow_once = std::make_shared<bool>(true);
  rig.SpawnServe([slow_once](os::Env env, const chan::Msg&) -> sim::Task<void> {
    if (*slow_once) {
      *slow_once = false;
      co_await env.kernel->Sleep(env, sim::Duration::Millis(1));
    }
    co_return;
  });
  bool ok = false;
  auto fab = rig.fab;
  rig.kernel.Spawn(*rig.clients[0], "web", [&ok, fab](os::Env env) -> sim::Task<void> {
    ok = (co_await fab->Call(env, 0, 16)).ok();
    fab->Close();
  });
  rig.kernel.Run();
  Trace().Disable();
  EXPECT_TRUE(ok);
#ifndef DIPC_OBS_OFF
  std::vector<TraceEvent> events = Trace().Snapshot();
  uint64_t opid = 0;
  for (const TraceEvent& e : events) {
    if (e.type == EventType::kFabricDispatch && e.opid != 0) {
      opid = e.opid;
    }
  }
  ASSERT_NE(opid, 0u);
  std::set<uint64_t> attempts;
  for (const TraceEvent& e : events) {
    if (e.opid == opid && e.type == EventType::kReqSend) {
      attempts.insert(e.arg & 0xff);  // attempt byte of the hop-span arg
    }
  }
  EXPECT_GE(attempts.size(), 2u) << "expected at least one retry attempt";
  EXPECT_TRUE(attempts.count(0));
#endif
  Trace().Clear();
}

// Sums the "domain/<tag>/time_ns/<kind>" counters out of a SnapshotJson for
// the CPU-time kinds (futex_wait is blocked time, deliberately excluded).
double SumDomainCpuTimeNs(const std::string& snap) {
  double sum = 0;
  size_t pos = 0;
  while ((pos = snap.find("\"domain/", pos)) != std::string::npos) {
    const size_t name_end = snap.find('"', pos + 1);
    if (name_end == std::string::npos) {
      break;
    }
    const std::string name = snap.substr(pos + 1, name_end - pos - 1);
    pos = name_end + 1;
    if (name.find("/time_ns/futex_wait") != std::string::npos ||
        name.find("/time_ns/") == std::string::npos) {
      continue;
    }
    const size_t colon = snap.find(':', name_end);
    if (colon == std::string::npos) {
      break;
    }
    sum += std::atof(snap.c_str() + colon + 1);
  }
  return sum;
}

// Per-domain time attribution must close the books: the user/kernel/copy/
// proxy domain counters sum to the kernel's busy (non-idle) accounting for
// the same window, within 5% (sub-ns residue stays in the charge carry).
TEST(ObsDomainTime, DomainCpuTimeSumsMatchBusyAccounting) {
#ifdef DIPC_OBS_OFF
  GTEST_SKIP() << "observability compiled out (-DDIPC_OBS_OFF)";
#endif
  Registry::Default().Reset();
  FabricRig rig;
  rig.SpawnServe([](os::Env, const chan::Msg&) -> sim::Task<void> { co_return; });
  auto fab = rig.fab;
  rig.kernel.Spawn(*rig.clients[0], "web", [fab](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE((co_await fab->Call(env, 0, 16)).ok());
    }
    fab->Close();
  });
  rig.kernel.Run();
  rig.kernel.FlushIdleAccounting();
  const os::TimeBreakdown total = rig.kernel.accounting().Summed();
  const double busy_ns = (total.Total() - total[os::TimeCat::kIdle]).nanos();
  ASSERT_GT(busy_ns, 0.0);
  const std::string snap = Registry::Default().SnapshotJson();
  const double domain_ns = SumDomainCpuTimeNs(snap);
  EXPECT_GT(domain_ns, 0.0) << snap.substr(0, 400);
  EXPECT_NEAR(domain_ns, busy_ns, busy_ns * 0.05)
      << "per-domain attribution does not close against busy accounting";
  // Scheduler observability rides the same registry: the migration counter
  // and per-CPU run-queue gauges are registered at kernel construction.
  EXPECT_NE(snap.find("\"os/sched/migrations\""), std::string::npos);
  EXPECT_NE(snap.find("\"os/sched/cpu0/runq_depth\""), std::string::npos);
}

}  // namespace
}  // namespace dipc::obs
