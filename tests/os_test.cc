// Unit tests for the OS kernel substrate: scheduling, time accounting,
// semaphores, pipes, UNIX sockets, user memory, and thread lifecycle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "codoms/codoms.h"
#include "hw/machine.h"
#include "os/kernel.h"
#include "os/pipe.h"
#include "os/semaphore.h"
#include "os/unix_socket.h"

namespace dipc::os {
namespace {

using sim::Duration;

class OsTest : public ::testing::Test {
 protected:
  OsTest() : machine_(4), codoms_(machine_), kernel_(machine_, codoms_) {}

  hw::Machine machine_;
  codoms::Codoms codoms_;
  Kernel kernel_;
};

TEST_F(OsTest, SpawnRunsToCompletion) {
  bool ran = false;
  Process& p = kernel_.CreateProcess("p");
  kernel_.Spawn(p, "t", [&ran](Env env) -> sim::Task<void> {
    co_await env.kernel->Spend(*env.self, Duration::Nanos(100), TimeCat::kUser);
    ran = true;
  });
  kernel_.Run();
  EXPECT_TRUE(ran);
  EXPECT_GE(kernel_.now().nanos(), 100.0);
}

TEST_F(OsTest, SpendAdvancesVirtualTimeAndAccounts) {
  Process& p = kernel_.CreateProcess("p");
  kernel_.Spawn(p, "t", [](Env env) -> sim::Task<void> {
    co_await env.kernel->Spend(*env.self, Duration::Micros(3), TimeCat::kUser);
    co_await env.kernel->Spend(*env.self, Duration::Micros(1), TimeCat::kKernel);
  });
  kernel_.Run();
  TimeBreakdown b = kernel_.accounting().Summed();
  EXPECT_NEAR(b[TimeCat::kUser].micros(), 3.0, 1e-9);
  EXPECT_NEAR(b[TimeCat::kKernel].micros(), 1.0, 1e-9);
  EXPECT_NEAR(p.cpu_time().micros(), 4.0, 1e-9);
}

TEST_F(OsTest, JoinWaitsForTarget) {
  Process& p = kernel_.CreateProcess("p");
  double joined_at = -1;
  Thread& worker = kernel_.Spawn(p, "worker", [](Env env) -> sim::Task<void> {
    co_await env.kernel->Spend(*env.self, Duration::Micros(10), TimeCat::kUser);
  });
  kernel_.Spawn(p, "joiner", [&](Env env) -> sim::Task<void> {
    co_await env.kernel->Join(env, worker);
    joined_at = env.kernel->now().nanos();
  });
  kernel_.Run();
  EXPECT_GE(joined_at, 10000.0);
}

TEST_F(OsTest, JoinOnDeadThreadReturnsImmediately) {
  Process& p = kernel_.CreateProcess("p");
  Thread& worker = kernel_.Spawn(p, "w", [](Env) -> sim::Task<void> { co_return; });
  kernel_.Run();
  ASSERT_EQ(worker.state(), ThreadState::kDead);
  bool joined = false;
  kernel_.Spawn(p, "j", [&](Env env) -> sim::Task<void> {
    co_await env.kernel->Join(env, worker);
    joined = true;
  });
  kernel_.Run();
  EXPECT_TRUE(joined);
}

TEST_F(OsTest, PinnedThreadsShareOneCpu) {
  Process& p = kernel_.CreateProcess("p");
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    kernel_.Spawn(
        p, "t" + std::to_string(i),
        [&order, i](Env env) -> sim::Task<void> {
          co_await env.kernel->Spend(*env.self, Duration::Micros(5), TimeCat::kUser);
          order.push_back(i);
        },
        /*pin_cpu=*/0);
  }
  kernel_.Run();
  // Serialized on CPU 0: finish times are 5, 10+, 15+ us (plus switch costs).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_GE(kernel_.now().micros(), 15.0);
}

TEST_F(OsTest, UnpinnedThreadsSpreadAcrossCpus) {
  Process& p = kernel_.CreateProcess("p");
  for (int i = 0; i < 4; ++i) {
    kernel_.Spawn(p, "t" + std::to_string(i), [](Env env) -> sim::Task<void> {
      co_await env.kernel->Spend(*env.self, Duration::Micros(100), TimeCat::kUser);
    });
  }
  kernel_.Run();
  // 4 threads on 4 CPUs run in parallel: wall time ~100us, not ~400us.
  EXPECT_LT(kernel_.now().micros(), 150.0);
}

TEST_F(OsTest, SleepBlocksWithoutHoldingCpu) {
  Process& p = kernel_.CreateProcess("p");
  double awake_at = 0;
  bool other_ran = false;
  kernel_.Spawn(
      p, "sleeper",
      [&](Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Millis(1));
        awake_at = env.kernel->now().micros();
      },
      /*pin_cpu=*/0);
  kernel_.Spawn(
      p, "other",
      [&](Env env) -> sim::Task<void> {
        co_await env.kernel->Spend(*env.self, Duration::Micros(10), TimeCat::kUser);
        other_ran = true;
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_TRUE(other_ran);
  EXPECT_GE(awake_at, 1000.0);
}

TEST_F(OsTest, IdleTimeIsAccounted) {
  Process& p = kernel_.CreateProcess("p");
  kernel_.Spawn(
      p, "t",
      [](Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Micros(100));
        co_await env.kernel->Spend(*env.self, Duration::Micros(1), TimeCat::kUser);
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  // CPU 0 idled for ~100us while the thread slept.
  EXPECT_GT(kernel_.accounting().cpu(0)[TimeCat::kIdle].micros(), 90.0);
}

// --- Semaphores ---

TEST_F(OsTest, SemaphoreUncontendedStaysInUserSpace) {
  Process& p = kernel_.CreateProcess("p");
  auto sem = std::make_shared<Semaphore>(1);
  kernel_.Spawn(p, "t", [sem](Env env) -> sim::Task<void> {
    co_await sem->Wait(env);
    co_await sem->Post(env);
  });
  kernel_.Run();
  TimeBreakdown b = kernel_.accounting().Summed();
  EXPECT_EQ(b[TimeCat::kSyscallCrossing], Duration::Zero());
  EXPECT_EQ(sem->count(), 1);
}

TEST_F(OsTest, SemaphorePingPongSameCpu) {
  Process& p = kernel_.CreateProcess("p");
  auto a = std::make_shared<Semaphore>(0);
  auto b = std::make_shared<Semaphore>(0);
  constexpr int kRounds = 100;
  kernel_.Spawn(
      p, "ping",
      [a, b](Env env) -> sim::Task<void> {
        for (int i = 0; i < kRounds; ++i) {
          co_await a->Post(env);
          co_await b->Wait(env);
        }
      },
      /*pin_cpu=*/0);
  kernel_.Spawn(
      p, "pong",
      [a, b](Env env) -> sim::Task<void> {
        for (int i = 0; i < kRounds; ++i) {
          co_await a->Wait(env);
          co_await b->Post(env);
        }
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_EQ(a->waiter_count(), 0u);
  EXPECT_EQ(b->waiter_count(), 0u);
  // A contended round trip costs on the order of 1.5 us (Fig. 2 anchor).
  double per_round = kernel_.now().nanos() / kRounds;
  EXPECT_GT(per_round, 500.0);
  EXPECT_LT(per_round, 4000.0);
  // No IPIs on the same CPU: cross-CPU costs must not appear.
  EXPECT_EQ(kernel_.accounting().cpu(1).Total(), Duration::Zero());
}

TEST_F(OsTest, SemaphorePingPongCrossCpuIsSlower) {
  auto run = [](int cpu_a, int cpu_b) {
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    Kernel kernel(machine, codoms);
    Process& p = kernel.CreateProcess("p");
    auto a = std::make_shared<Semaphore>(0);
    auto b = std::make_shared<Semaphore>(0);
    constexpr int kRounds = 50;
    kernel.Spawn(
        p, "ping",
        [a, b](Env env) -> sim::Task<void> {
          for (int i = 0; i < kRounds; ++i) {
            co_await a->Post(env);
            co_await b->Wait(env);
          }
        },
        cpu_a);
    kernel.Spawn(
        p, "pong",
        [a, b](Env env) -> sim::Task<void> {
          for (int i = 0; i < kRounds; ++i) {
            co_await a->Wait(env);
            co_await b->Post(env);
          }
        },
        cpu_b);
    kernel.Run();
    return kernel.now().nanos() / kRounds;
  };
  double same = run(0, 0);
  double cross = run(0, 1);
  EXPECT_GT(cross, same * 1.5) << "same=" << same << " cross=" << cross;
}

// --- Pipes ---

TEST_F(OsTest, PipeTransfersBytesIntact) {
  Process& p = kernel_.CreateProcess("p");
  auto pipe = std::make_shared<Pipe>(kernel_);
  auto wbuf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  auto rbuf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(wbuf.ok() && rbuf.ok());
  std::string got;
  kernel_.Spawn(p, "writer", [&, pipe](Env env) -> sim::Task<void> {
    const std::string msg = "through the kernel ring";
    EXPECT_TRUE(env.kernel->UserWrite(*env.self, wbuf.value(), std::as_bytes(std::span(msg))).ok());
    auto n = co_await pipe->Write(env, wbuf.value(), msg.size());
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), msg.size());
    pipe->CloseWriteEnd();
  });
  kernel_.Spawn(p, "reader", [&, pipe](Env env) -> sim::Task<void> {
    std::vector<char> buf(64);
    auto n = co_await pipe->Read(env, rbuf.value(), buf.size());
    EXPECT_TRUE(n.ok());
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, rbuf.value(), std::as_writable_bytes(std::span(buf))).ok());
    got.assign(buf.data(), n.value());
  });
  kernel_.Run();
  EXPECT_EQ(got, "through the kernel ring");
}

TEST_F(OsTest, PipeReaderSeesEofAfterClose) {
  Process& p = kernel_.CreateProcess("p");
  auto pipe = std::make_shared<Pipe>(kernel_);
  auto buf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(buf.ok());
  bool eof = false;
  kernel_.Spawn(p, "reader", [&, pipe](Env env) -> sim::Task<void> {
    auto n = co_await pipe->Read(env, buf.value(), 16);
    EXPECT_TRUE(n.ok());
    eof = n.value() == 0;
  });
  kernel_.Spawn(p, "closer", [&, pipe](Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(50));
    pipe->CloseWriteEnd();
  });
  kernel_.Run();
  EXPECT_TRUE(eof);
}

TEST_F(OsTest, PipeBlocksWriterWhenFull) {
  Process& p = kernel_.CreateProcess("p");
  auto pipe = std::make_shared<Pipe>(kernel_);
  uint64_t total = Pipe::kCapacity + 4096;  // forces one blocking round
  auto wbuf = kernel_.MapAnonymous(p, total, hw::PageFlags{.writable = true});
  auto rbuf = kernel_.MapAnonymous(p, total, hw::PageFlags{.writable = true});
  ASSERT_TRUE(wbuf.ok() && rbuf.ok());
  uint64_t read_total = 0;
  kernel_.Spawn(p, "writer", [&, pipe](Env env) -> sim::Task<void> {
    auto n = co_await pipe->Write(env, wbuf.value(), total);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), total);
    pipe->CloseWriteEnd();
  });
  kernel_.Spawn(p, "reader", [&, pipe](Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(100));  // let the pipe fill
    while (true) {
      auto n = co_await pipe->Read(env, rbuf.value(), 16384);
      EXPECT_TRUE(n.ok());
      if (n.value() == 0) {
        break;
      }
      read_total += n.value();
    }
  });
  kernel_.Run();
  EXPECT_EQ(read_total, total);
}

// --- UNIX sockets ---

TEST_F(OsTest, SocketPairRoundTrip) {
  Process& p = kernel_.CreateProcess("p");
  auto [client, server] = UnixStreamCore::CreatePair(kernel_);
  auto cbuf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  auto sbuf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(cbuf.ok() && sbuf.ok());
  std::string reply;
  kernel_.Spawn(p, "client", [&, client = client](Env env) -> sim::Task<void> {
    const std::string msg = "ping";
    EXPECT_TRUE(env.kernel->UserWrite(*env.self, cbuf.value(), std::as_bytes(std::span(msg))).ok());
    EXPECT_TRUE((co_await client->Send(env, cbuf.value(), msg.size())).ok());
    auto s = co_await client->RecvExact(env, cbuf.value(), 4);
    EXPECT_TRUE(s.ok());
    std::vector<char> out(4);
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, cbuf.value(), std::as_writable_bytes(std::span(out))).ok());
    reply.assign(out.begin(), out.end());
  });
  kernel_.Spawn(p, "server", [&, server = server](Env env) -> sim::Task<void> {
    EXPECT_TRUE((co_await server->RecvExact(env, sbuf.value(), 4)).ok());
    std::vector<char> in(4);
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, sbuf.value(), std::as_writable_bytes(std::span(in))).ok());
    EXPECT_EQ(std::string(in.begin(), in.end()), "ping");
    const std::string msg = "pong";
    EXPECT_TRUE(env.kernel->UserWrite(*env.self, sbuf.value(), std::as_bytes(std::span(msg))).ok());
    EXPECT_TRUE((co_await server->Send(env, sbuf.value(), msg.size())).ok());
  });
  kernel_.Run();
  EXPECT_EQ(reply, "pong");
}

TEST_F(OsTest, SocketPassesKernelObjects) {
  Process& p = kernel_.CreateProcess("p");
  auto [a, b] = UnixStreamCore::CreatePair(kernel_);
  auto buf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(buf.ok());
  std::string received_type;
  kernel_.Spawn(p, "sender", [&, a = a](Env env) -> sim::Task<void> {
    auto sem = std::make_shared<Semaphore>(3);
    std::vector<std::shared_ptr<KernelObject>> handles{sem};
    EXPECT_TRUE((co_await a->Send(env, buf.value(), 1, std::move(handles))).ok());
  });
  kernel_.Spawn(p, "receiver", [&, b = b](Env env) -> sim::Task<void> {
    std::vector<std::shared_ptr<KernelObject>> handles;
    auto n = co_await b->Recv(env, buf.value(), 1, &handles);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(handles.size(), 1u);
    received_type = handles[0]->type_name();
    auto sem = std::dynamic_pointer_cast<Semaphore>(handles[0]);
    EXPECT_NE(sem, nullptr);
    EXPECT_EQ(sem->count(), 3);
  });
  kernel_.Run();
  EXPECT_EQ(received_type, "semaphore");
}

TEST_F(OsTest, NamedListenerAcceptsConnections) {
  Process& p = kernel_.CreateProcess("p");
  auto listener = std::make_shared<UnixListener>(kernel_);
  ASSERT_TRUE(kernel_.BindPath("/tmp/svc.sock", listener).ok());
  auto buf = kernel_.MapAnonymous(p, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(buf.ok());
  bool served = false;
  kernel_.Spawn(p, "server", [&, listener](Env env) -> sim::Task<void> {
    auto conn = co_await listener->Accept(env);
    EXPECT_TRUE(conn.ok());
    EXPECT_TRUE((co_await conn.value()->RecvExact(env, buf.value(), 5)).ok());
    served = true;
  });
  kernel_.Spawn(p, "client", [&](Env env) -> sim::Task<void> {
    auto conn = co_await UnixListener::Connect(env, "/tmp/svc.sock");
    EXPECT_TRUE(conn.ok());
    EXPECT_TRUE((co_await conn.value()->Send(env, buf.value(), 5)).ok());
  });
  kernel_.Run();
  EXPECT_TRUE(served);
}

TEST_F(OsTest, ConnectToUnboundPathFails) {
  Process& p = kernel_.CreateProcess("p");
  base::ErrorCode code = base::ErrorCode::kOk;
  kernel_.Spawn(p, "client", [&](Env env) -> sim::Task<void> {
    auto conn = co_await UnixListener::Connect(env, "/nope");
    code = conn.code();
  });
  kernel_.Run();
  EXPECT_EQ(code, base::ErrorCode::kNotFound);
}

// --- User memory & protection integration ---

TEST_F(OsTest, CrossProcessMemoryIsIsolatedByDefault) {
  Process& p1 = kernel_.CreateProcess("p1");
  Process& p2 = kernel_.CreateProcess("p2");
  auto m1 = kernel_.MapAnonymous(p1, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(m1.ok());
  // p2's thread cannot touch p1's mapping: different page table => unmapped.
  base::ErrorCode code = base::ErrorCode::kOk;
  kernel_.Spawn(p2, "t", [&](Env env) -> sim::Task<void> {
    auto s = co_await env.kernel->TouchUser(env, m1.value(), 8, hw::AccessType::kRead);
    code = s.code();
  });
  kernel_.Run();
  EXPECT_EQ(code, base::ErrorCode::kFault);
}

TEST_F(OsTest, SharedPageTableStillIsolatedByDomainTags) {
  // Two dIPC-style processes in one page table: CODOMs tags isolate them.
  hw::PageTable& shared = machine_.CreatePageTable();
  hw::DomainTag d1 = codoms_.apl_table().AllocateTag();
  hw::DomainTag d2 = codoms_.apl_table().AllocateTag();
  Process& p1 = kernel_.CreateProcessIn("p1", shared, d1);
  Process& p2 = kernel_.CreateProcessIn("p2", shared, d2);
  auto m1 = kernel_.MapAnonymous(p1, hw::kPageSize, hw::PageFlags{.writable = true});
  ASSERT_TRUE(m1.ok());
  base::ErrorCode code = base::ErrorCode::kOk;
  kernel_.Spawn(p2, "t", [&](Env env) -> sim::Task<void> {
    auto s = co_await env.kernel->TouchUser(env, m1.value(), 8, hw::AccessType::kRead);
    code = s.code();
  });
  kernel_.Run();
  EXPECT_EQ(code, base::ErrorCode::kFault);
  // With an APL grant, the same access succeeds.
  codoms_.apl_table().Grant(d2, d1, codoms::Perm::kRead);
  code = base::ErrorCode::kOk;
  kernel_.Spawn(p2, "t2", [&](Env env) -> sim::Task<void> {
    auto s = co_await env.kernel->TouchUser(env, m1.value(), 8, hw::AccessType::kRead);
    code = s.code();
  });
  kernel_.Run();
  EXPECT_EQ(code, base::ErrorCode::kOk);
}

TEST_F(OsTest, NoPageTableSwitchCostBetweenSharedPtProcesses) {
  hw::PageTable& shared = machine_.CreatePageTable();
  hw::DomainTag d1 = codoms_.apl_table().AllocateTag();
  hw::DomainTag d2 = codoms_.apl_table().AllocateTag();
  Process& p1 = kernel_.CreateProcessIn("p1", shared, d1);
  Process& p2 = kernel_.CreateProcessIn("p2", shared, d2);
  auto body = [](Env env) -> sim::Task<void> {
    co_await env.kernel->Spend(*env.self, Duration::Micros(1), TimeCat::kUser);
  };
  kernel_.Spawn(p1, "t1", body, /*pin_cpu=*/0);
  kernel_.Spawn(p2, "t2", body, /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_EQ(kernel_.accounting().cpu(0)[TimeCat::kPageTableSwitch], Duration::Zero());
}

TEST_F(OsTest, PageTableSwitchCostBetweenPrivateProcesses) {
  Process& p1 = kernel_.CreateProcess("p1");
  Process& p2 = kernel_.CreateProcess("p2");
  auto body = [](Env env) -> sim::Task<void> {
    co_await env.kernel->Spend(*env.self, Duration::Micros(1), TimeCat::kUser);
  };
  kernel_.Spawn(p1, "t1", body, /*pin_cpu=*/0);
  kernel_.Spawn(p2, "t2", body, /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_GT(kernel_.accounting().cpu(0)[TimeCat::kPageTableSwitch], Duration::Zero());
}

TEST_F(OsTest, KillThreadNeverRunsAgain) {
  Process& p = kernel_.CreateProcess("p");
  auto sem = std::make_shared<Semaphore>(0);
  int after_wait = 0;
  Thread& victim = kernel_.Spawn(p, "victim", [&, sem](Env env) -> sim::Task<void> {
    co_await sem->Wait(env);
    ++after_wait;
  });
  kernel_.Spawn(p, "killer", [&, sem](Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(10));
    env.kernel->KillThread(victim);
    co_await sem->Post(env);  // wake would go to the dead thread
  });
  kernel_.Run();
  EXPECT_EQ(after_wait, 0);
  EXPECT_EQ(victim.state(), ThreadState::kDead);
}

// Conservation property: across any run, per-CPU accounted time equals the
// busy+idle wall time the scheduler produced (no time leaks).
TEST_F(OsTest, AccountingConservation) {
  Process& p = kernel_.CreateProcess("p");
  auto sem = std::make_shared<Semaphore>(0);
  for (int i = 0; i < 6; ++i) {
    kernel_.Spawn(p, "w" + std::to_string(i), [sem, i](Env env) -> sim::Task<void> {
      co_await env.kernel->Spend(*env.self, Duration::Micros(20 + i), TimeCat::kUser);
      co_await sem->Post(env);
      co_await sem->Wait(env);
      co_await env.kernel->Spend(*env.self, Duration::Micros(5), TimeCat::kUser);
    });
  }
  kernel_.Spawn(p, "releaser", [sem](Env env) -> sim::Task<void> {
    for (int i = 0; i < 6; ++i) {
      co_await sem->Wait(env);
    }
    for (int i = 0; i < 6; ++i) {
      co_await sem->Post(env);
    }
  });
  kernel_.Run();
  // Each CPU's categories must sum to <= wall time (dispatch latencies like
  // IPI delivery are idle-absorbed; nothing may exceed wall time).
  for (uint32_t c = 0; c < 4; ++c) {
    double total = kernel_.accounting().cpu(c).Total().nanos();
    EXPECT_LE(total, kernel_.now().nanos() * 1.0001);
  }
}

}  // namespace
}  // namespace dipc::os
