// Unit tests for the fan-out channel (src/chan/fanout.h): broadcast and
// sharded delivery, per-receiver capability isolation, credit-based flow
// control with both lag policies, duplex endpoints, and the per-receiver
// revocation regression for dead receivers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chan/channel.h"
#include "chan/fanout.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "hw/machine.h"
#include "os/kernel.h"

namespace dipc::chan {
namespace {

using base::ErrorCode;
using sim::Duration;

class FanOutTest : public ::testing::Test {
 protected:
  FanOutTest() : machine_(6), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_) {}

  std::vector<os::Process*> MakeReceivers(int n) {
    std::vector<os::Process*> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(&dipc_.CreateDipcProcess("worker-" + std::to_string(i)));
    }
    return out;
  }

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  core::Dipc dipc_;
};

TEST_F(FanOutTest, BroadcastDeliversEveryMessageToEveryReceiver) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(3);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  constexpr int kMsgs = 7;  // > slots: forces rotation through every slot
  std::vector<std::vector<std::string>> got(3);
  for (uint32_t r = 0; r < 3; ++r) {
    kernel_.Spawn(*receivers[r], "worker", [&, fan, r](os::Env env) -> sim::Task<void> {
      while (true) {
        auto msg = co_await fan->Recv(env, r);
        if (!msg.ok()) {
          EXPECT_EQ(msg.code(), ErrorCode::kBrokenChannel);  // orderly close
          co_return;
        }
        std::vector<char> buf(msg.value().len);
        EXPECT_TRUE(env.kernel
                        ->UserRead(*env.self, msg.value().va,
                                   std::as_writable_bytes(std::span(buf)))
                        .ok());
        got[r].emplace_back(buf.begin(), buf.end());
        EXPECT_TRUE((co_await fan->Release(env, r, msg.value())).ok());
      }
    });
  }
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      std::string payload = "msg-" + std::to_string(i);
      EXPECT_TRUE(
          env.kernel->UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(payload)))
              .ok());
      EXPECT_TRUE((co_await fan->Send(env, buf.value(), payload.size())).ok());
    }
    fan->Close();
  });
  kernel_.Run();
  for (uint32_t r = 0; r < 3; ++r) {
    ASSERT_EQ(got[r].size(), static_cast<size_t>(kMsgs)) << "receiver " << r;
    for (int i = 0; i < kMsgs; ++i) {
      EXPECT_EQ(got[r][i], "msg-" + std::to_string(i)) << "receiver " << r;
    }
  }
  EXPECT_EQ(fan->sends(), static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(fan->deliveries(), static_cast<uint64_t>(3 * kMsgs));
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
}

TEST_F(FanOutTest, ShardedSendToRoundRobinsAndParallelizes) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(3);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  constexpr int kMsgs = 12;
  std::vector<int> counts(3, 0);
  for (uint32_t r = 0; r < 3; ++r) {
    kernel_.Spawn(*receivers[r], "worker", [&, fan, r](os::Env env) -> sim::Task<void> {
      while (true) {
        auto msg = co_await fan->Recv(env, r);
        if (!msg.ok()) {
          co_return;
        }
        ++counts[r];
        EXPECT_TRUE((co_await fan->Release(env, r, msg.value())).ok());
      }
    });
  }
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      uint32_t shard = fan->NextShard();
      DIPC_CHECK(shard < fan->receiver_count());
      EXPECT_TRUE((co_await fan->SendTo(env, buf.value(), 64, shard)).ok());
    }
    fan->Close();
  });
  kernel_.Run();
  // Round-robin: an exact three-way split, one delivery per publish.
  EXPECT_EQ(counts[0], kMsgs / 3);
  EXPECT_EQ(counts[1], kMsgs / 3);
  EXPECT_EQ(counts[2], kMsgs / 3);
  EXPECT_EQ(fan->deliveries(), static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
}

TEST_F(FanOutTest, CreditGateBlocksProducerUntilSlowestReceiverReleases) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(2);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers,
                                  {.slots = 2, .buf_bytes = 4096,
                                   .lag_policy = LagPolicy::kBlock});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  double third_send_at = 0;
  // Receiver 0 releases immediately; receiver 1 (the slowest) sits on its
  // deliveries until t=40us.
  kernel_.Spawn(*receivers[0], "fast", [&, fan](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await fan->Recv(env, 0);
      if (!msg.ok()) {
        co_return;
      }
      EXPECT_TRUE((co_await fan->Release(env, 0, msg.value())).ok());
    }
  });
  kernel_.Spawn(*receivers[1], "slow", [&, fan](os::Env env) -> sim::Task<void> {
    std::vector<Msg> held;
    for (int i = 0; i < 2; ++i) {
      auto msg = co_await fan->Recv(env, 1);
      DIPC_CHECK(msg.ok());
      held.push_back(msg.value());
    }
    co_await env.kernel->Sleep(env, Duration::Micros(40));
    EXPECT_TRUE((co_await fan->ReleaseBatch(env, 1, held)).ok());
    while (true) {
      auto msg = co_await fan->Recv(env, 1);
      if (!msg.ok()) {
        co_return;
      }
      EXPECT_TRUE((co_await fan->Release(env, 1, msg.value())).ok());
    }
  });
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      EXPECT_TRUE((co_await fan->Send(env, buf.value(), 64)).ok());
      if (i == 2) {
        third_send_at = env.kernel->now().micros();
      }
    }
    fan->Close();
  });
  kernel_.Run();
  // The third message could only be admitted once the slow receiver
  // returned credit at t=40 — backpressure from the slowest live receiver.
  EXPECT_GE(third_send_at, 40.0);
  EXPECT_GT(fan->blocked_on_credit(), 0u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
}

TEST_F(FanOutTest, DropSlowestSkipsLaggardAndKeepsGroupFlowing) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(2);
  // Credit line 2 < slots 8: the laggard can pin at most 2 buffers, so the
  // rest of the pool keeps the fast receiver fed.
  auto ch = FanOutChannel::Create(dipc_, prod, receivers,
                                  {.slots = 8, .buf_bytes = 4096, .credits = 2,
                                   .lag_policy = LagPolicy::kDropSlowest});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  constexpr int kMsgs = 10;
  int fast_got = 0;
  std::vector<Msg> laggard_held;
  kernel_.Spawn(*receivers[0], "fast", [&, fan](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await fan->Recv(env, 0);
      if (!msg.ok()) {
        co_return;
      }
      ++fast_got;
      EXPECT_TRUE((co_await fan->Release(env, 0, msg.value())).ok());
    }
  });
  kernel_.Spawn(*receivers[1], "laggard", [&, fan](os::Env env) -> sim::Task<void> {
    // Takes its first two deliveries and never releases until the end.
    for (int i = 0; i < 2; ++i) {
      auto msg = co_await fan->Recv(env, 1);
      DIPC_CHECK(msg.ok());
      laggard_held.push_back(msg.value());
    }
    co_await env.kernel->Sleep(env, Duration::Millis(5));  // outlive the run
    EXPECT_TRUE((co_await fan->ReleaseBatch(env, 1, laggard_held)).ok());
  });
  double last_send_at = 0;
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < kMsgs; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      EXPECT_TRUE((co_await fan->Send(env, buf.value(), 64)).ok());
    }
    last_send_at = env.kernel->now().micros();
    fan->Close();
  });
  kernel_.Run();
  // The laggard got exactly its credit line; everything else was dropped
  // for it and the fast receiver saw the full stream, without the producer
  // ever waiting for the laggard (it finished long before t=5ms).
  EXPECT_EQ(laggard_held.size(), 2u);
  EXPECT_EQ(fan->dropped(1), static_cast<uint64_t>(kMsgs - 2));
  EXPECT_EQ(fast_got, kMsgs);
  EXPECT_EQ(fan->dropped(0), 0u);
  EXPECT_LT(last_send_at, 5000.0);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
}

TEST_F(FanOutTest, DeadReceiverIsRevokedIndividuallyWithoutBreakingGroup) {
  // The acceptance regression: kill one receiver while it holds an
  // unreleased delivery and another sits in its FIFO. Its grants (and only
  // its grants) must die, its slots must recycle, and the two survivors
  // must keep receiving as if nothing happened.
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(3);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  constexpr int kBefore = 2;   // messages delivered before the kill
  constexpr int kAfter = 6;    // messages broadcast after the kill
  std::vector<int> got(3, 0);
  hw::VirtAddr victim_held_va = 0;
  for (uint32_t r = 0; r < 3; ++r) {
    kernel_.Spawn(*receivers[r], "worker", [&, fan, r](os::Env env) -> sim::Task<void> {
      int seen = 0;
      while (true) {
        auto msg = co_await fan->Recv(env, r);
        if (!msg.ok()) {
          // The victim sees its own crash; survivors see the orderly close.
          EXPECT_EQ(msg.code(),
                    r == 1 ? ErrorCode::kCalleeFailed : ErrorCode::kBrokenChannel)
              << "receiver " << r;
          co_return;
        }
        ++got[r];
        if (r == 1 && ++seen == 1) {
          // Hold the first delivery unreleased across the kill (t=30us).
          victim_held_va = msg.value().va;
          co_await env.kernel->Sleep(env, Duration::Micros(60));
          auto touch =
              co_await env.kernel->TouchUser(env, msg.value().va, 16, hw::AccessType::kRead);
          // The grant died with the process: access faults, release reports
          // the crash.
          EXPECT_EQ(touch.code(), ErrorCode::kFault);
          EXPECT_EQ((co_await fan->Release(env, r, msg.value())).code(),
                    ErrorCode::kCalleeFailed);
          continue;
        }
        EXPECT_TRUE((co_await fan->Release(env, r, msg.value())).ok());
      }
    });
  }
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < kBefore; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      EXPECT_TRUE((co_await fan->Send(env, buf.value(), 64)).ok());
    }
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // killer fires at 30
    EXPECT_FALSE(fan->receiver_alive(1));
    for (int i = 0; i < kAfter; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      EXPECT_TRUE((co_await fan->Send(env, buf.value(), 64)).ok());
    }
    fan->Close();
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    dipc_.KillProcess(*receivers[1]);
    // Per-receiver bookkeeping: the dead receiver's entire grant set is
    // revoked at kill time, while the survivors' grants stay untouched.
    EXPECT_EQ(codoms_.revocations().LiveCountForOwner(fan->receiver_owner(1)), 0u);
  });
  kernel_.Run();
  // The channel never broke and the survivors saw every message.
  EXPECT_EQ(fan->broken(), ErrorCode::kOk);
  EXPECT_EQ(got[0], kBefore + kAfter);
  EXPECT_EQ(got[2], kBefore + kAfter);
  // The victim popped only the first message (held across the kill); the
  // second died in its failed FIFO, and nothing after the kill reached it.
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(fan->live_receiver_count(), 2u);
  EXPECT_EQ(codoms_.revocations().LiveCountForOwner(fan->receiver_owner(1)), 0u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  ASSERT_NE(victim_held_va, 0u);
}

TEST_F(FanOutTest, ProducerDeathBreaksGroupAndRevokesEveryGrant) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(2);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  std::vector<ErrorCode> recv_errors(2, ErrorCode::kOk);
  for (uint32_t r = 0; r < 2; ++r) {
    kernel_.Spawn(*receivers[r], "worker", [&, fan, r](os::Env env) -> sim::Task<void> {
      while (true) {
        auto msg = co_await fan->Recv(env, r);
        if (!msg.ok()) {
          recv_errors[r] = msg.code();
          co_return;
        }
        (void)co_await fan->Release(env, r, msg.value());
      }
    });
  }
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    auto buf = co_await fan->AcquireBuf(env);
    DIPC_CHECK(buf.ok());
    EXPECT_TRUE((co_await fan->Send(env, buf.value(), 64)).ok());
    co_await env.kernel->Sleep(env, Duration::Millis(10));  // killed meanwhile
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(40));
    dipc_.KillProcess(prod);
  });
  kernel_.Run();
  EXPECT_EQ(fan->broken(), ErrorCode::kCalleeFailed);
  EXPECT_EQ(recv_errors[0], ErrorCode::kCalleeFailed);
  EXPECT_EQ(recv_errors[1], ErrorCode::kCalleeFailed);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  // Every async counter this world ever minted belongs to the channel, and
  // the teardown revoked them all.
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanOutTest, SteadyStateBroadcastMintsNothingAfterWarmup) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(2);
  constexpr uint32_t kSlots = 2;
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = kSlots, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  for (uint32_t r = 0; r < 2; ++r) {
    kernel_.Spawn(*receivers[r], "worker", [&, fan, r](os::Env env) -> sim::Task<void> {
      while (true) {
        auto msg = co_await fan->Recv(env, r);
        if (!msg.ok()) {
          co_return;
        }
        EXPECT_TRUE((co_await fan->Release(env, r, msg.value())).ok());
      }
    });
  }
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    auto cycle = [&](int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        auto buf = co_await fan->AcquireBuf(env);
        DIPC_CHECK(buf.ok());
        DIPC_CHECK((co_await fan->Send(env, buf.value(), 64)).ok());
      }
    };
    co_await cycle(3 * kSlots);  // warm every write + per-receiver read template
    // One write template per slot, one read template per (receiver, slot).
    EXPECT_EQ(fan->cold_mints(), kSlots + 2 * kSlots);
    const uint64_t mints_before = codoms_.mint_count();
    machine_.costs().cap_setup = Duration::Micros(100);  // poison the mint
    sim::Time t0 = env.kernel->now();
    co_await cycle(16);
    double elapsed_us = (env.kernel->now() - t0).micros();
    EXPECT_EQ(codoms_.mint_count(), mints_before) << "steady state minted a capability";
    EXPECT_LT(elapsed_us, 100.0);
    fan->Close();
  });
  kernel_.Run();
}

TEST_F(FanOutTest, DuplexEndpointsRoundTripAndCloseBothWays) {
  // Duplex endpoints: requests forward, completions on the paired reverse
  // ring, both directions through one object per side.
  os::Process& client = dipc_.CreateDipcProcess("client");
  os::Process& server = dipc_.CreateDipcProcess("server");
  auto dx = DuplexChannel::Create(dipc_, client, server, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(dx.ok());
  std::shared_ptr<DuplexEndpoint> cli = dx.value()->a_end();
  std::shared_ptr<DuplexEndpoint> srv = dx.value()->b_end();
  constexpr int kCalls = 5;
  int served = 0;
  std::vector<uint64_t> replies;
  kernel_.Spawn(server, "server", [&, srv](os::Env env) -> sim::Task<void> {
    while (true) {
      auto req = co_await srv->Recv(env);
      if (!req.ok()) {
        co_return;  // client closed the forward ring
      }
      uint64_t v = 0;
      EXPECT_TRUE(env.kernel
                      ->UserRead(*env.self, req.value().va,
                                 std::as_writable_bytes(std::span(&v, 1)))
                      .ok());
      ++served;
      EXPECT_TRUE((co_await srv->Release(env, req.value())).ok());
      auto buf = co_await srv->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      uint64_t resp = v * 10;
      EXPECT_TRUE(
          env.kernel->UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(&resp, 1)))
              .ok());
      EXPECT_TRUE((co_await srv->Send(env, buf.value(), 8)).ok());
    }
  });
  kernel_.Spawn(client, "client", [&, cli](os::Env env) -> sim::Task<void> {
    for (uint64_t i = 1; i <= kCalls; ++i) {
      auto buf = co_await cli->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      EXPECT_TRUE(
          env.kernel->UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(&i, 1)))
              .ok());
      EXPECT_TRUE((co_await cli->Send(env, buf.value(), 8)).ok());
      auto resp = co_await cli->Recv(env);
      DIPC_CHECK(resp.ok());
      uint64_t v = 0;
      EXPECT_TRUE(env.kernel
                      ->UserRead(*env.self, resp.value().va,
                                 std::as_writable_bytes(std::span(&v, 1)))
                      .ok());
      replies.push_back(v);
      EXPECT_TRUE((co_await cli->Release(env, resp.value())).ok());
    }
    cli->Close();
  });
  kernel_.Run();
  EXPECT_EQ(served, kCalls);
  ASSERT_EQ(replies.size(), static_cast<size_t>(kCalls));
  for (uint64_t i = 1; i <= kCalls; ++i) {
    EXPECT_EQ(replies[i - 1], i * 10);
  }
}

TEST_F(FanOutTest, DeadShardSendToIsRetryableAndAbandonRecyclesSlots) {
  // The producer-side ownership contract: while broken() == kOk a failed
  // SendTo leaves the buffer owned, so it can be resharded onto a live
  // receiver, and AbandonBufBatch hands unsent buffers back to the pool
  // (revoking the write grants) instead of leaking them.
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(2);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  int shard0_got = 0;
  kernel_.Spawn(*receivers[0], "live", [&, fan](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await fan->Recv(env, 0);
      if (!msg.ok()) {
        co_return;
      }
      ++shard0_got;
      EXPECT_TRUE((co_await fan->Release(env, 0, msg.value())).ok());
    }
  });
  kernel_.Spawn(*receivers[1], "doomed", [&, fan](os::Env env) -> sim::Task<void> {
    // Takes deliveries but never releases; dies holding them (t=30us).
    while (true) {
      auto msg = co_await fan->Recv(env, 1);
      if (!msg.ok()) {
        co_return;
      }
    }
  });
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    // Fill shard 1's credit line / the whole pool, then keep going: the
    // third acquire can only proceed once the kill recycles the slots the
    // dead receiver pinned.
    for (int i = 0; i < 2; ++i) {
      auto buf = co_await fan->AcquireBuf(env);
      DIPC_CHECK(buf.ok());
      DIPC_CHECK((co_await fan->SendTo(env, buf.value(), 64, 1)).ok());
    }
    auto buf = co_await fan->AcquireBuf(env);
    DIPC_CHECK(buf.ok());
    EXPECT_GE(env.kernel->now().micros(), 30.0);  // needed the kill's recycle
    // The shard is dead: the send fails, the buffer stays ours, and the
    // retry onto the live shard delivers it.
    auto dead = co_await fan->SendTo(env, buf.value(), 64, 1);
    EXPECT_EQ(dead.code(), ErrorCode::kCalleeFailed);
    EXPECT_EQ(fan->broken(), ErrorCode::kOk);
    EXPECT_TRUE((co_await fan->SendTo(env, buf.value(), 64, 0)).ok());
    // Abandon: gather the whole pool (AcquireBufBatch drains what's there,
    // so accumulate while the in-flight message comes back), hand it
    // straight back, and prove the pool is whole by re-gathering it.
    auto gather_all = [&]() -> sim::Task<std::vector<SendBuf>> {
      std::vector<SendBuf> held;
      while (held.size() < 2) {
        auto got = co_await fan->AcquireBufBatch(env, 2 - static_cast<uint32_t>(held.size()));
        DIPC_CHECK(got.ok());
        held.insert(held.end(), got.value().begin(), got.value().end());
      }
      co_return held;
    };
    std::vector<SendBuf> all = co_await gather_all();
    EXPECT_TRUE((co_await fan->AbandonBufBatch(env, all)).ok());
    std::vector<SendBuf> again = co_await gather_all();
    EXPECT_TRUE((co_await fan->AbandonBufBatch(env, again)).ok());
    fan->Close();
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    dipc_.KillProcess(*receivers[1]);
  });
  kernel_.Run();
  EXPECT_EQ(shard0_got, 1);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanOutTest, ReboundReceiverReentersRotationWithoutSkewingShards) {
  // NextShard fairness regression: a receiver that dies and is later rebound
  // must re-enter the round-robin at its old index — the cursor may neither
  // double-visit its neighbours nor skip the revived slot.
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(3);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 6, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  std::vector<int> got(4, 0);  // 0, 1 (old incarnation), 2, 1 (rebound)
  auto recv_loop = [&, fan](uint32_t r, int counter) {
    return [&, fan, r, counter](os::Env env) -> sim::Task<void> {
      while (true) {
        auto msg = co_await fan->Recv(env, r);
        if (!msg.ok()) {
          co_return;
        }
        ++got[counter];
        if (!(co_await fan->Release(env, r, msg.value())).ok()) {
          co_return;
        }
      }
    };
  };
  for (uint32_t r = 0; r < 3; ++r) {
    kernel_.Spawn(*receivers[r], "worker", recv_loop(r, static_cast<int>(r)));
  }
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    auto shard_send = [&](int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        auto buf = co_await fan->AcquireBuf(env);
        DIPC_CHECK(buf.ok());
        uint32_t shard = fan->NextShard();
        DIPC_CHECK(shard < fan->receiver_count());
        DIPC_CHECK((co_await fan->SendTo(env, buf.value(), 64, shard)).ok());
      }
    };
    co_await shard_send(2);  // cursor now past slots 0 and 1
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // killer fires at 30
    EXPECT_FALSE(fan->receiver_alive(1));
    co_await shard_send(1);  // lands on slot 2 (slot 1 is dead, not skipped-forever)
    os::Process& fresh = dipc_.CreateDipcProcess("worker-1b");
    EXPECT_TRUE(fan->RebindReceiver(1, fresh).ok());
    kernel_.Spawn(fresh, "worker", recv_loop(1, 3));
    co_await shard_send(9);  // full rotations: exactly three per live slot
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // drain releases
    fan->Close();
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    dipc_.KillProcess(*receivers[1]);
  });
  kernel_.Run();
  EXPECT_EQ(got[0], 1 + 3);  // one before the kill, three after the rebind
  EXPECT_EQ(got[1], 1);      // the old incarnation saw only its first shard
  EXPECT_EQ(got[2], 1 + 3);
  EXPECT_EQ(got[3], 3);  // the rebound slot takes its full share, no skew
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanOutTest, ShardDeathDuringSendSpendLeavesBufferOwnedAndRetryable) {
  // The mid-send ownership regression: the target dies while the producer is
  // suspended inside SendTo's runtime charge. The failed send must leave the
  // producer owning the buffer — the old code revoked the write grant before
  // the suspension, so the death sweep freed the slot while the caller was
  // promised it could retry, aliasing the next acquire.
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(2);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  int live_got = 0;
  kernel_.Spawn(*receivers[0], "live", [&, fan](os::Env env) -> sim::Task<void> {
    while (true) {
      auto msg = co_await fan->Recv(env, 0);
      if (!msg.ok()) {
        co_return;
      }
      ++live_got;
      EXPECT_TRUE((co_await fan->Release(env, 0, msg.value())).ok());
    }
  });
  kernel_.Spawn(*receivers[1], "doomed", [&, fan](os::Env env) -> sim::Task<void> {
    auto msg = co_await fan->Recv(env, 1);
    EXPECT_FALSE(msg.ok());  // killed while parked
  });
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    auto buf = co_await fan->AcquireBuf(env);
    DIPC_CHECK(buf.ok());
    // Widen the send's Spend window so the killer (t=5us) fires inside it.
    machine_.costs().chan_fast_path = Duration::Micros(10);
    auto s = co_await fan->SendTo(env, buf.value(), 64, 1);
    EXPECT_GE(env.kernel->now().micros(), 10.0);  // we were inside the Spend
    EXPECT_EQ(s.code(), ErrorCode::kCalleeFailed);
    EXPECT_EQ(fan->broken(), ErrorCode::kOk);
    EXPECT_FALSE(fan->receiver_alive(1));
    // Ownership survived the mid-Spend death: the write grant is live and
    // the very same buffer reshards onto the live receiver.
    EXPECT_GE(fan->LiveGrantCount(), 1u);
    EXPECT_TRUE((co_await fan->SendTo(env, buf.value(), 64, 0)).ok());
    co_await env.kernel->Sleep(env, Duration::Millis(1));  // drain the release
    fan->Close();
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(5));
    dipc_.KillProcess(*receivers[1]);
  });
  kernel_.Run();
  EXPECT_EQ(live_got, 1);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
  EXPECT_EQ(codoms_.revocations().live_count(), 0u);
}

TEST_F(FanOutTest, AllReceiversDeadFailsProducerOps) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  auto receivers = MakeReceivers(2);
  auto ch = FanOutChannel::Create(dipc_, prod, receivers, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  std::shared_ptr<FanOutChannel> fan = ch.value();
  ErrorCode send_err = ErrorCode::kOk;
  kernel_.Spawn(prod, "producer", [&, fan](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // both killed at 20/30
    auto buf = co_await fan->AcquireBuf(env);
    if (!buf.ok()) {
      send_err = buf.code();
      co_return;
    }
    send_err = (co_await fan->Send(env, buf.value(), 64)).code();
  });
  os::Process& killer = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(20));
    dipc_.KillProcess(*receivers[0]);
    co_await env.kernel->Sleep(env, Duration::Micros(10));
    dipc_.KillProcess(*receivers[1]);
  });
  kernel_.Run();
  EXPECT_EQ(send_err, ErrorCode::kCalleeFailed);
  EXPECT_EQ(fan->live_receiver_count(), 0u);
  EXPECT_EQ(fan->LiveGrantCount(), 0u);
}

}  // namespace
}  // namespace dipc::chan
