// Tests for the baseline IPC stacks: rpcgen-style local RPC and L4-style
// synchronous IPC.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "codoms/codoms.h"
#include "hw/machine.h"
#include "l4/l4_gate.h"
#include "os/kernel.h"
#include "rpc/marshal.h"
#include "rpc/rpc.h"

namespace dipc {
namespace {

using base::ErrorCode;
using sim::Duration;

TEST(Marshal, RoundTripsScalarsAndStrings) {
  rpc::Encoder enc;
  enc.PutU32(7);
  enc.PutU64(1ull << 40);
  enc.PutString("dvdstore");
  enc.PutI64(-42);
  rpc::Decoder dec(enc.bytes());
  EXPECT_EQ(dec.GetU32().value(), 7u);
  EXPECT_EQ(dec.GetU64().value(), 1ull << 40);
  EXPECT_EQ(dec.GetString().value(), "dvdstore");
  EXPECT_EQ(dec.GetI64().value(), -42);
  EXPECT_TRUE(dec.exhausted());
}

TEST(Marshal, DecodePastEndFails) {
  rpc::Encoder enc;
  enc.PutU32(1);
  rpc::Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetU32().ok());
  EXPECT_EQ(dec.GetU64().code(), ErrorCode::kInvalidArgument);
}

TEST(Marshal, CostGrowsWithSize) {
  EXPECT_LT(rpc::MarshalCost(1).nanos(), rpc::MarshalCost(4096).nanos());
}

class IpcStackTest : public ::testing::Test {
 protected:
  IpcStackTest() : machine_(4), codoms_(machine_), kernel_(machine_, codoms_) {}

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
};

TEST_F(IpcStackTest, RpcEchoRoundTrip) {
  os::Process& server_proc = kernel_.CreateProcess("server");
  os::Process& client_proc = kernel_.CreateProcess("client");
  auto server = std::make_shared<rpc::RpcServer>(kernel_);
  server->RegisterHandler(1, [](os::Env env, std::vector<std::byte> body)
                                 -> sim::Task<std::vector<std::byte>> {
    // Echo with a twist so we know the handler ran.
    co_await env.kernel->Spend(*env.self, Duration::Nanos(50), os::TimeCat::kUser);
    body.push_back(std::byte{0xAB});
    co_return body;
  });
  auto listener = server->Bind("/tmp/echo.rpc");
  ASSERT_TRUE(listener.ok());
  kernel_.Spawn(server_proc, "svc", [&, server](os::Env env) -> sim::Task<void> {
    auto conn = co_await listener.value()->Accept(env);
    EXPECT_TRUE(conn.ok());
    co_await server->ServeConn(env, std::move(conn).value());
  });
  size_t reply_size = 0;
  std::byte last{};
  kernel_.Spawn(client_proc, "cli", [&](os::Env env) -> sim::Task<void> {
    auto client = co_await rpc::RpcClient::Connect(env, "/tmp/echo.rpc");
    EXPECT_TRUE(client.ok());
    std::vector<std::byte> args{std::byte{1}, std::byte{2}, std::byte{3}};
    auto reply = co_await client.value()->Call(env, 1, args);
    EXPECT_TRUE(reply.ok());
    reply_size = reply->size();
    last = reply->back();
    (void)client.value()->Call(env, 1, args);  // destroyed unawaited: must be safe
  });
  kernel_.Run();
  EXPECT_EQ(reply_size, 4u);
  EXPECT_EQ(last, std::byte{0xAB});
}

TEST_F(IpcStackTest, RpcLatencyNearPaperAnchor) {
  // Paper: Local RPC (=CPU) ~6.9 us round trip for a 1-byte argument.
  os::Process& sp = kernel_.CreateProcess("server");
  os::Process& cp = kernel_.CreateProcess("client");
  auto server = std::make_shared<rpc::RpcServer>(kernel_);
  server->RegisterHandler(7, [](os::Env, std::vector<std::byte> body)
                                 -> sim::Task<std::vector<std::byte>> { co_return body; });
  auto listener = server->Bind("/tmp/lat.rpc");
  ASSERT_TRUE(listener.ok());
  kernel_.Spawn(
      sp, "svc",
      [&, server](os::Env env) -> sim::Task<void> {
        auto conn = co_await listener.value()->Accept(env);
        EXPECT_TRUE(conn.ok());
        co_await server->ServeConn(env, std::move(conn).value());
      },
      /*pin_cpu=*/0);
  constexpr int kCalls = 64;
  double start_ns = 0, end_ns = 0;
  kernel_.Spawn(
      cp, "cli",
      [&](os::Env env) -> sim::Task<void> {
        auto client = co_await rpc::RpcClient::Connect(env, "/tmp/lat.rpc");
        EXPECT_TRUE(client.ok());
        std::vector<std::byte> arg{std::byte{0}};
        // Warmup call, then measure.
        (void)co_await client.value()->Call(env, 7, arg);
        start_ns = env.kernel->now().nanos();
        for (int i = 0; i < kCalls; ++i) {
          auto r = co_await client.value()->Call(env, 7, arg);
          EXPECT_TRUE(r.ok());
        }
        end_ns = env.kernel->now().nanos();
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  double per_call = (end_ns - start_ns) / kCalls;
  EXPECT_GT(per_call, 3000.0);
  EXPECT_LT(per_call, 12000.0);
}

TEST_F(IpcStackTest, L4PingPongNearPaperAnchor) {
  // Paper: L4 (=CPU) round trip ~948 ns (474x a 2 ns function call).
  os::Process& sp = kernel_.CreateProcess("server");
  os::Process& cp = kernel_.CreateProcess("client");
  auto gate = std::make_shared<l4::L4Gate>(kernel_);
  kernel_.Spawn(
      sp, "svc",
      [gate](os::Env env) -> sim::Task<void> {
        l4::Message m = co_await gate->Recv(env);
        while (m.mr[0] != 0) {  // mr[0]==0 terminates
          l4::Message r;
          r.mr[0] = m.mr[0] + 1;
          m = co_await gate->ReplyWait(env, r);
        }
        l4::Message bye;
        co_await gate->ReplyWait(env, bye);
      },
      /*pin_cpu=*/0);
  constexpr int kCalls = 100;
  double start_ns = 0, end_ns = 0;
  uint64_t sum = 0;
  kernel_.Spawn(
      cp, "cli",
      [&, gate](os::Env env) -> sim::Task<void> {
        l4::Message m;
        m.mr[0] = 1;
        (void)co_await gate->Call(env, m);  // warmup
        start_ns = env.kernel->now().nanos();
        for (int i = 1; i <= kCalls; ++i) {
          m.mr[0] = static_cast<uint64_t>(i);
          auto r = co_await gate->Call(env, m);
          EXPECT_TRUE(r.ok());
          sum += r->mr[0];
        }
        end_ns = env.kernel->now().nanos();
        m.mr[0] = 0;
        (void)co_await gate->Call(env, m);  // stop the server
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_EQ(sum, static_cast<uint64_t>(kCalls) * (kCalls + 1) / 2 + kCalls);
  double per_call = (end_ns - start_ns) / kCalls;
  EXPECT_GT(per_call, 700.0);
  EXPECT_LT(per_call, 1300.0);
}

TEST_F(IpcStackTest, L4CrossCpuSlowerThanSameCpu) {
  auto run = [](int server_cpu) {
    hw::Machine machine(2);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    os::Process& sp = kernel.CreateProcess("server");
    os::Process& cp = kernel.CreateProcess("client");
    auto gate = std::make_shared<l4::L4Gate>(kernel);
    kernel.Spawn(
        sp, "svc",
        [gate](os::Env env) -> sim::Task<void> {
          l4::Message m = co_await gate->Recv(env);
          while (m.mr[0] != 0) {
            m = co_await gate->ReplyWait(env, m);
          }
          co_return;
        },
        server_cpu);
    double total = 0;
    kernel.Spawn(
        cp, "cli",
        [&, gate](os::Env env) -> sim::Task<void> {
          l4::Message m;
          m.mr[0] = 5;
          double t0 = env.kernel->now().nanos();
          for (int i = 0; i < 20; ++i) {
            (void)co_await gate->Call(env, m);
          }
          total = env.kernel->now().nanos() - t0;
          m.mr[0] = 0;
          (void)co_await gate->Call(env, m);
        },
        /*pin_cpu=*/0);
    kernel.Run();
    return total / 20;
  };
  double same = run(0);
  double cross = run(1);
  EXPECT_GT(cross, same * 1.3) << "same=" << same << " cross=" << cross;
}

TEST_F(IpcStackTest, L4MultipleCallersServedFifo) {
  os::Process& sp = kernel_.CreateProcess("server");
  os::Process& cp = kernel_.CreateProcess("clients");
  auto gate = std::make_shared<l4::L4Gate>(kernel_);
  kernel_.Spawn(sp, "svc", [gate](os::Env env) -> sim::Task<void> {
    l4::Message m = co_await gate->Recv(env);
    for (int served = 1; served < 3; ++served) {
      l4::Message r;
      r.mr[0] = m.mr[0] * 10;
      m = co_await gate->ReplyWait(env, r);
    }
    l4::Message r;
    r.mr[0] = m.mr[0] * 10;
    co_await gate->ReplyWait(env, r);  // final reply; server then idles
  });
  std::vector<uint64_t> replies;
  for (int i = 1; i <= 3; ++i) {
    kernel_.Spawn(cp, "c" + std::to_string(i), [&, gate, i](os::Env env) -> sim::Task<void> {
      l4::Message m;
      m.mr[0] = static_cast<uint64_t>(i);
      auto r = co_await gate->Call(env, m);
      EXPECT_TRUE(r.ok());
      replies.push_back(r->mr[0]);
    });
  }
  kernel_.Run();
  ASSERT_EQ(replies.size(), 3u);
  for (uint64_t v : replies) {
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

}  // namespace
}  // namespace dipc
