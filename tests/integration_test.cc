// End-to-end integration: the full dIPC workflow across three processes
// wired through the loader + named-socket resolution, concurrent callers,
// fault propagation through a multi-hop chain, fork/exec interplay, and the
// dIPC "User RPC" pattern.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/loader.h"
#include "hw/machine.h"
#include "os/kernel.h"
#include "os/semaphore.h"

namespace dipc::core {
namespace {

using base::ErrorCode;
using sim::Duration;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : machine_(4), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_),
        loader_(dipc_) {}

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  Dipc dipc_;
  Loader loader_;
};

// The full three-tier wiring of the paper's Figure 3, via the public API
// only: db publishes "query"; php imports it and publishes "render"; web
// imports "render" and drives requests end to end.
TEST_F(IntegrationTest, ThreeTierChainViaLoaderAndResolution) {
  os::Process& web = dipc_.CreateDipcProcess("web");
  os::Process& php = dipc_.CreateDipcProcess("php");
  os::Process& db = dipc_.CreateDipcProcess("db");
  uint64_t db_served = 0;

  // db tier.
  kernel_.Spawn(db, "db-main", [&](os::Env env) -> sim::Task<void> {
    ModuleSpec spec;
    spec.name = "database";
    spec.entries.push_back(
        EntrySpec{.domain = "",
                  .name = "query",
                  .signature = {.in_regs = 1, .out_regs = 1, .stack_bytes = 0},
                  .callee_policy = IsolationPolicy::High(),
                  .fn = [&](os::Env e, CallArgs a) -> sim::Task<uint64_t> {
                    ++db_served;
                    co_await e.kernel->Spend(*e.self, Duration::Micros(3), os::TimeCat::kUser);
                    co_return a.regs[0] * 10;
                  }});
    spec.publish_path = "/svc/db";
    EXPECT_TRUE(loader_.Load(env, std::move(spec)).ok());
    co_return;
  });

  // php tier: imports db.query, exports render.
  kernel_.Spawn(php, "php-main", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(20));
    std::vector<EntryExpectation> expect{
        {EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0}, IsolationPolicy::Low()}};
    std::vector<std::string> names{"query"};
    auto imported = co_await loader_.ImportEntries(env, "/svc/db", std::move(expect),
                                                   std::move(names));
    EXPECT_TRUE(imported.ok());
    // Keep the import alive for the lifetime of the entry fn below.
    auto query = std::make_shared<ProxyRef>(imported.value().by_name["query"]);
    ModuleSpec spec;
    spec.name = "interpreter";
    spec.entries.push_back(
        EntrySpec{.domain = "",
                  .name = "render",
                  .signature = {.in_regs = 1, .out_regs = 1, .stack_bytes = 0},
                  .callee_policy = IsolationPolicy::Low(),
                  .fn = [query](os::Env e, CallArgs a) -> sim::Task<uint64_t> {
                    uint64_t acc = 0;
                    for (int i = 0; i < 3; ++i) {
                      CallArgs q;
                      q.regs[0] = a.regs[0] + i;
                      acc += co_await query->Call(e, q);
                    }
                    co_return acc;
                  }});
    spec.publish_path = "/svc/php";
    EXPECT_TRUE(loader_.Load(env, std::move(spec)).ok());
    co_return;
  });

  // web tier: end-to-end request.
  uint64_t result = 0;
  kernel_.Spawn(web, "web-main", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(100));
    std::vector<EntryExpectation> expect{
        {EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0}, IsolationPolicy::High()}};
    std::vector<std::string> names{"render"};
    auto imported = co_await loader_.ImportEntries(env, "/svc/php", std::move(expect),
                                                   std::move(names));
    EXPECT_TRUE(imported.ok());
    CallArgs a;
    a.regs[0] = 5;
    result = co_await imported.value().by_name["render"].Call(env, a);
    EXPECT_EQ(env.self->TakeError(), ErrorCode::kOk);
    // The thread crossed web -> php -> db and returned with `current`
    // correctly restored at every hop.
    EXPECT_EQ(&env.self->process(), &web);
  });
  kernel_.Run();
  // render(5) = q(5)+q(6)+q(7) = 50+60+70.
  EXPECT_EQ(result, 180u);
  EXPECT_EQ(db_served, 3u);
}

TEST_F(IntegrationTest, ConcurrentCallersShareOneEntry) {
  os::Process& srv = dipc_.CreateDipcProcess("server");
  os::Process& cli = dipc_.CreateDipcProcess("client");
  uint64_t served = 0;
  EntryDesc entry{.name = "work",
                  .signature = {.in_regs = 1, .out_regs = 1, .stack_bytes = 0},
                  .policy = IsolationPolicy::High(),
                  .fn = [&](os::Env e, CallArgs a) -> sim::Task<uint64_t> {
                    ++served;
                    co_await e.kernel->Spend(*e.self, Duration::Micros(10), os::TimeCat::kUser);
                    co_return a.regs[0] + 1;
                  }};
  auto handle = dipc_.EntryRegister(srv, *dipc_.DomDefault(srv), {entry});
  ASSERT_TRUE(handle.ok());
  auto req = dipc_.EntryRequest(cli, *handle.value(), {{entry.signature, IsolationPolicy::Low()}});
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(cli), *req.value().proxy_domain).ok());
  ProxyRef proxy = req.value().proxies[0];
  uint64_t sum = 0;
  constexpr int kThreads = 8;
  constexpr int kCallsEach = 25;
  for (int t = 0; t < kThreads; ++t) {
    kernel_.Spawn(cli, "caller" + std::to_string(t), [&, proxy, t](os::Env env) -> sim::Task<void> {
      for (int i = 0; i < kCallsEach; ++i) {
        CallArgs a;
        a.regs[0] = static_cast<uint64_t>(t * 1000 + i);
        uint64_t r = co_await proxy.Call(env, a);
        EXPECT_EQ(env.self->TakeError(), ErrorCode::kOk);
        EXPECT_EQ(r, static_cast<uint64_t>(t * 1000 + i + 1));
        sum += r;
      }
      // Each thread's KCS ended balanced.
      EXPECT_EQ(dipc_.thread_state(*env.self).kcs.depth(), 0u);
    });
  }
  kernel_.Run();
  EXPECT_EQ(served, static_cast<uint64_t>(kThreads * kCallsEach));
  EXPECT_EQ(proxy.proxy()->invocations(), served);
  // Threads ran in parallel across 4 CPUs: total wall time well below the
  // serialized 8*25*10us.
  EXPECT_LT(kernel_.now().micros(), kThreads * kCallsEach * 10.0 * 0.6);
}

TEST_F(IntegrationTest, ForkedChildFallsBackToSocketsThenExecRejoins) {
  os::Process& parent = dipc_.CreateDipcProcess("parent");
  // Parent exports an entry.
  EntryDesc entry{.name = "f",
                  .signature = {},
                  .policy = IsolationPolicy::Low(),
                  .fn = [](os::Env, CallArgs) -> sim::Task<uint64_t> { co_return 99; }};
  auto handle = dipc_.EntryRegister(parent, *dipc_.DomDefault(parent), {entry});
  ASSERT_TRUE(handle.ok());
  // fork(): the child is a plain process — dIPC entry_request must refuse
  // domain creation for it until exec() re-enables dIPC.
  os::Process& child = dipc_.Fork(parent);
  EXPECT_FALSE(child.dipc_enabled());
  EXPECT_EQ(dipc_.DomCreate(child).code(), ErrorCode::kNotSupported);
  // exec(): back in the global VAS with a fresh default domain; the child
  // can now request proxies and call its parent directly.
  dipc_.Exec(child, "child-image");
  auto req = dipc_.EntryRequest(child, *handle.value(), {{EntrySignature{}, {}}});
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(child), *req.value().proxy_domain).ok());
  ProxyRef proxy = req.value().proxies[0];
  uint64_t got = 0;
  kernel_.Spawn(child, "main", [&, proxy](os::Env env) -> sim::Task<void> {
    got = co_await proxy.Call(env, CallArgs{});
  });
  kernel_.Run();
  EXPECT_EQ(got, 99u);
}

TEST_F(IntegrationTest, CrashInDeepChainRecoversAtEachLevel) {
  // web -> php -> db where db crashes on every call; php recovers (the
  // fault-forwarding pattern of §2.4) and returns a fallback.
  os::Process& web = dipc_.CreateDipcProcess("w");
  os::Process& php = dipc_.CreateDipcProcess("p");
  os::Process& db = dipc_.CreateDipcProcess("d");
  EntryDesc db_entry{.name = "q",
                     .signature = {},
                     .policy = IsolationPolicy::High(),
                     .fn = [](os::Env, CallArgs) -> sim::Task<uint64_t> {
                       Dipc::Crash();
                       co_return 0;
                     }};
  auto db_handle = dipc_.EntryRegister(db, *dipc_.DomDefault(db), {db_entry});
  auto db_req = dipc_.EntryRequest(php, *db_handle.value(), {{EntrySignature{}, {}}});
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(php), *db_req.value().proxy_domain).ok());
  ProxyRef db_proxy = db_req.value().proxies[0];
  int php_recoveries = 0;
  EntryDesc php_entry{.name = "r",
                      .signature = {},
                      .policy = IsolationPolicy::Low(),
                      .fn = [&](os::Env e, CallArgs) -> sim::Task<uint64_t> {
                        (void)co_await db_proxy.Call(e, CallArgs{});
                        if (e.self->TakeError() == ErrorCode::kCalleeFailed) {
                          ++php_recoveries;
                          co_return 0xFA11BACC;
                        }
                        co_return 1;
                      }};
  auto php_handle = dipc_.EntryRegister(php, *dipc_.DomDefault(php), {php_entry});
  auto php_req = dipc_.EntryRequest(web, *php_handle.value(), {{EntrySignature{}, {}}});
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(web), *php_req.value().proxy_domain).ok());
  ProxyRef php_proxy = php_req.value().proxies[0];
  std::vector<uint64_t> results;
  kernel_.Spawn(web, "main", [&, php_proxy](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      results.push_back(co_await php_proxy.Call(env, CallArgs{}));
      EXPECT_EQ(env.self->TakeError(), ErrorCode::kOk);  // php absorbed it
    }
  });
  kernel_.Run();
  EXPECT_EQ(php_recoveries, 3);
  ASSERT_EQ(results.size(), 3u);
  for (uint64_t r : results) {
    EXPECT_EQ(r, 0xFA11BACCu);
  }
}

TEST_F(IntegrationTest, UserRpcPatternOnlyUsesKernelForSync) {
  // §7.2's "dIPC - User RPC": RPC semantics at user level inside one dIPC
  // process — copy arguments, wake a service thread, no socket path. The
  // accounting must show zero socket-style kernel copies (only futexes).
  os::Process& app = dipc_.CreateDipcProcess("app");
  auto req_sem = std::make_shared<os::Semaphore>(0);
  auto resp_sem = std::make_shared<os::Semaphore>(0);
  auto work = dipc_.DomMmap(app, *dipc_.DomDefault(app), 4096, hw::PageFlags{.writable = true});
  ASSERT_TRUE(work.ok());
  uint64_t processed = 0;
  kernel_.Spawn(
      app, "service",
      [&, req_sem, resp_sem](os::Env env) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i) {
          co_await req_sem->Wait(env);
          auto s = co_await env.kernel->TouchUser(env, work.value(), 512, hw::AccessType::kRead);
          EXPECT_TRUE(s.ok());
          ++processed;
          co_await resp_sem->Post(env);
        }
      },
      /*pin_cpu=*/1);
  kernel_.Spawn(
      app, "client",
      [&, req_sem, resp_sem](os::Env env) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i) {
          auto s = co_await env.kernel->TouchUser(env, work.value(), 512, hw::AccessType::kWrite);
          EXPECT_TRUE(s.ok());
          co_await req_sem->Post(env);
          co_await resp_sem->Wait(env);
        }
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_EQ(processed, 10u);
}

}  // namespace
}  // namespace dipc::core
