// Chaos sweep over the supervised kChan OLTP fabric: a fault plan murders
// PHP workers, drops wakes, fails capability mints and injects delays while
// the supervisor heals the worker tier and deadline-armed clients retry.
// Every operation must complete exactly once (zero given-up requests, late
// duplicates dropped at dispatch), and the whole run — including the fault
// decision log — must replay byte-identically from the same seed + plan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/oltp/oltp.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace dipc::apps {
namespace {

using sim::Duration;

OltpConfig ChaosConfig(std::string plan) {
  OltpConfig cfg;
  cfg.mode = OltpMode::kChan;
  cfg.threads = 8;
  cfg.chan_workers = 3;
  cfg.warmup = Duration::Millis(5);
  cfg.measure = Duration::Millis(40);
  cfg.supervise = true;
  cfg.heartbeat = Duration::Millis(1);
  cfg.request_deadline = Duration::Millis(4);
  cfg.max_retries = 50;
  // CI's chaos sweep re-runs the suite across seeds: a later `seed`
  // directive overrides an earlier one, so appending wins.
  if (const char* s = std::getenv("DIPC_CHAOS_SEED"); s != nullptr && !plan.empty()) {
    plan += "seed " + std::string(s) + "\n";
  }
  cfg.fault_plan = std::move(plan);
  return cfg;
}

TEST(ChaosTest, SupervisedFabricSurvivesWorkerMurder) {
#ifdef DIPC_FAULT_OFF
  GTEST_SKIP() << "fault injection compiled out (-DDIPC_FAULT_OFF)";
#endif
  OltpResult r = RunOltp(ChaosConfig(
      "seed 11\n"
      "rule chan/send kill every=800 victim=php-worker max=4\n"));
  EXPECT_GT(r.operations, 0u);
  EXPECT_EQ(r.requests_failed, 0u) << "a murdered worker lost a request";
  EXPECT_GE(r.faults_injected, 1u);
  EXPECT_GE(r.workers_respawned, 1u) << "supervisor never healed a dead slot";
}

TEST(ChaosTest, FullSweepCompletesEveryRequestExactlyOnce) {
#ifdef DIPC_FAULT_OFF
  GTEST_SKIP() << "fault injection compiled out (-DDIPC_FAULT_OFF)";
#endif
  // With DIPC_CHAOS_TRACE=<path>, the run is traced and a FAILING sweep
  // exports the event ring as a Chrome trace for the CI artifact — the
  // forensic record of the seed that broke exactly-once.
  const char* trace_out = std::getenv("DIPC_CHAOS_TRACE");
  if (trace_out != nullptr) {
    obs::Trace().Enable();
  }
  OltpResult r = RunOltp(ChaosConfig(
      "seed 7\n"
      "rule chan/send kill every=900 victim=php-worker max=3\n"
      "rule fanout/credit_grant drop_wake p=0.01\n"
      "rule chan/futex_wake drop_wake p=0.005\n"
      "rule codoms/mint fail p=0.002\n"
      "rule chan/slot_claim delay p=0.01 delay_ns=2000\n"));
  if (trace_out != nullptr) {
    if (r.requests_failed != 0 || r.operations == 0) {
      obs::Trace().ExportChromeTrace(trace_out);
    }
    obs::Trace().Disable();
  }
  EXPECT_GT(r.operations, 0u);
  // Exactly-once: no request was given up (lost), and any completion that
  // raced a retry was dropped at dispatch (counted, never double-posted) —
  // each counted operation consumed exactly one completion.
  EXPECT_EQ(r.requests_failed, 0u);
  EXPECT_GE(r.faults_injected, 1u);
}

TEST(ChaosTest, MultiTenantFabricSweepKeepsExactlyOnce) {
#ifdef DIPC_FAULT_OFF
  GTEST_SKIP() << "fault injection compiled out (-DDIPC_FAULT_OFF)";
#endif
  // The N x M plane sweep: 8 tenant client domains share 4 PHP workers, so
  // one murdered worker tears a receiver slot out of 8 fan-out request
  // planes and a producer line out of 8 fan-in response planes at once —
  // every plane must excise and rebind without losing a single opid. On top
  // of the kills, wake drops on both credit paths and scripted dispatch
  // failures exercise the retry/backoff seam under the SAME opid.
  const char* trace_out = std::getenv("DIPC_CHAOS_TRACE");
  if (trace_out != nullptr) {
    obs::Trace().Enable();
  }
  OltpConfig cfg = ChaosConfig(
      "seed 19\n"
      "rule chan/send kill every=900 victim=php-worker max=3\n"
      "rule fanin/credit_grant drop_wake p=0.01\n"
      "rule fanout/credit_grant drop_wake p=0.01\n"
      "rule fabric/dispatch fail p=0.005\n");
  cfg.tenants = 8;
  cfg.chan_workers = 4;
  cfg.threads = 16;
  OltpResult r = RunOltp(cfg);
  if (trace_out != nullptr) {
    if (r.requests_failed != 0 || r.operations == 0) {
      obs::Trace().ExportChromeTrace("fabric_" + std::string(trace_out));
    }
    obs::Trace().Disable();
  }
  EXPECT_GT(r.operations, 0u);
  EXPECT_EQ(r.requests_failed, 0u) << "a tenant plane lost an operation";
  EXPECT_GE(r.faults_injected, 1u);
  EXPECT_GE(r.workers_respawned, 1u) << "supervisor never healed a dead slot";
}

TEST(ChaosTest, SameSeedAndPlanReplaysIdentically) {
#ifdef DIPC_FAULT_OFF
  GTEST_SKIP() << "fault injection compiled out (-DDIPC_FAULT_OFF)";
#endif
  const OltpConfig cfg = ChaosConfig(
      "seed 23\n"
      "rule chan/send kill every=700 victim=php-worker max=3\n"
      "rule chan/futex_wake drop_wake p=0.01\n"
      "rule chan/slot_claim delay p=0.02 delay_ns=1000\n");
  OltpResult r1 = RunOltp(cfg);
  // The injector log survives Disarm until the next Arm: snapshot run 1's
  // decision trace before the replay overwrites it.
  std::vector<fault::FiredRecord> log1 = fault::Injector::Global().log();
  OltpResult r2 = RunOltp(cfg);
  std::vector<fault::FiredRecord> log2 = fault::Injector::Global().log();

  EXPECT_EQ(r1.operations, r2.operations);
  EXPECT_EQ(r1.requests_retried, r2.requests_retried);
  EXPECT_EQ(r1.requests_failed, r2.requests_failed);
  EXPECT_EQ(r1.workers_respawned, r2.workers_respawned);
  EXPECT_EQ(r1.duplicate_completions, r2.duplicate_completions);
  EXPECT_EQ(r1.faults_injected, r2.faults_injected);
  ASSERT_EQ(log1.size(), log2.size());
#ifndef DIPC_FAULT_OFF
  EXPECT_GT(log1.size(), 0u);
  ASSERT_EQ(0, std::memcmp(log1.data(), log2.data(),
                           log1.size() * sizeof(fault::FiredRecord)));
#endif
}

TEST(ChaosTest, NoPlanMeansNoFaultsAndNoRetries) {
  OltpConfig cfg = ChaosConfig("");
  OltpResult r = RunOltp(cfg);
  EXPECT_GT(r.operations, 0u);
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_EQ(r.requests_failed, 0u);
  EXPECT_EQ(r.workers_respawned, 0u);
}

}  // namespace
}  // namespace dipc::apps
