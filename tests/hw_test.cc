// Unit tests for the machine model: caches, TLB, physical memory, page tables.
#include <gtest/gtest.h>

#include <cstring>

#include "hw/cache_model.h"
#include "hw/cost_model.h"
#include "hw/machine.h"
#include "hw/page_table.h"
#include "hw/phys_mem.h"
#include "hw/tlb_model.h"

namespace dipc::hw {
namespace {

TEST(CostModel, CycleConversion) {
  CostModel cm;
  EXPECT_NEAR(cm.Cycles(31).nanos(), 10.0, 0.01);
  EXPECT_GT(cm.Cycles(1).picos(), 0);
}

TEST(TagArray, HitAfterTouch) {
  TagArray t(1024, 2, 64);  // 8 sets, 2 ways
  EXPECT_FALSE(t.Touch(1));
  EXPECT_TRUE(t.Touch(1));
  EXPECT_TRUE(t.Contains(1));
}

TEST(TagArray, LruEviction) {
  TagArray t(128, 2, 64);  // 1 set, 2 ways
  t.Touch(10);
  t.Touch(20);
  t.Touch(10);     // 10 is now MRU
  t.Touch(30);     // evicts 20
  EXPECT_TRUE(t.Contains(10));
  EXPECT_FALSE(t.Contains(20));
  EXPECT_TRUE(t.Contains(30));
}

TEST(TagArray, InvalidateAll) {
  TagArray t(1024, 2, 64);
  t.Touch(1);
  t.Touch(2);
  t.InvalidateAll();
  EXPECT_FALSE(t.Contains(1));
  EXPECT_FALSE(t.Contains(2));
}

class CacheModelTest : public ::testing::Test {
 protected:
  CostModel costs_;
  CacheModel caches_{2, costs_};
};

TEST_F(CacheModelTest, ColdMissThenHit) {
  sim::Duration cold = caches_.Access(0, 0x1000, 64, /*is_write=*/false);
  sim::Duration warm = caches_.Access(0, 0x1000, 64, /*is_write=*/false);
  EXPECT_EQ(cold, costs_.mem_access);
  EXPECT_EQ(warm, costs_.l1_hit);
}

TEST_F(CacheModelTest, CrossCpuDirtyTransferCostsMore) {
  // CPU 0 writes a line, CPU 1 reads it: must pay a remote transfer, not DRAM.
  caches_.Access(0, 0x2000, 64, /*is_write=*/true);
  sim::Duration remote = caches_.Access(1, 0x2000, 64, /*is_write=*/false);
  EXPECT_EQ(remote, costs_.remote_transfer);
  // Second read from CPU 1 is now a local hit.
  EXPECT_EQ(caches_.Access(1, 0x2000, 64, false), costs_.l1_hit);
}

TEST_F(CacheModelTest, FootprintLargerThanL1SpillsToL2) {
  // Touch 64 KB twice: second pass cannot be all L1 hits (L1 is 32 KB).
  constexpr uint64_t kFootprint = 64 * 1024;
  caches_.Access(0, 0, kFootprint, false);
  caches_.ResetStats();
  caches_.Access(0, 0, kFootprint, false);
  const CacheStats& s = caches_.stats();
  EXPECT_GT(s.l2_hits, 0u);
  EXPECT_EQ(s.mem_accesses, 0u);  // everything still fits in L2
}

TEST_F(CacheModelTest, MultiLineAccessChargesPerLine) {
  sim::Duration four_lines = caches_.Access(0, 0x8000, 256, false);
  EXPECT_EQ(four_lines, costs_.mem_access * 4);
}

TEST_F(CacheModelTest, FlushPrivateForcesRefill) {
  caches_.Access(0, 0x3000, 64, false);
  caches_.FlushPrivate(0);
  sim::Duration d = caches_.Access(0, 0x3000, 64, false);
  // After a private flush the line still lives in L3.
  EXPECT_EQ(d, costs_.l3_hit);
}

TEST(TlbModel, MissThenHit) {
  CostModel costs;
  TlbModel tlb(costs);
  EXPECT_EQ(tlb.Translate(0x1000, 1), costs.tlb_walk);
  EXPECT_EQ(tlb.Translate(0x1000, 1), sim::Duration::Zero());
  EXPECT_EQ(tlb.walks(), 1u);
}

TEST(TlbModel, AsidsDoNotAlias) {
  CostModel costs;
  TlbModel tlb(costs);
  tlb.Translate(0x1000, 1);
  EXPECT_EQ(tlb.Translate(0x1000, 2), costs.tlb_walk);
}

TEST(TlbModel, FlushDropsTranslations) {
  CostModel costs;
  TlbModel tlb(costs);
  tlb.Translate(0x1000, 1);
  tlb.Flush();
  EXPECT_EQ(tlb.Translate(0x1000, 1), costs.tlb_walk);
}

TEST(PhysMem, ReadBackWritten) {
  PhysMem mem;
  uint64_t frame = mem.AllocFrame();
  PhysAddr pa = frame << kPageShift;
  const char msg[] = "hello, dIPC";
  mem.Write(pa + 100, std::as_bytes(std::span(msg)));
  char out[sizeof(msg)] = {};
  mem.Read(pa + 100, std::as_writable_bytes(std::span(out)));
  EXPECT_STREQ(out, msg);
}

TEST(PhysMem, ZeroFilledOnFirstTouch) {
  PhysMem mem;
  uint64_t frame = mem.AllocFrame();
  std::byte b{0xFF};
  mem.Read((frame << kPageShift) + 7, std::span(&b, 1));
  EXPECT_EQ(b, std::byte{0});
}

TEST(PhysMem, CopyCrossesFrameBoundaries) {
  PhysMem mem;
  uint64_t f1 = mem.AllocFrame();
  uint64_t f2 = mem.AllocFrame();
  PhysAddr src = (f1 << kPageShift) + kPageSize - 10;  // staddles f1/f2... within alloc region
  std::vector<char> data(20, 'x');
  mem.Write(src, std::as_bytes(std::span(data)));
  uint64_t f3 = mem.AllocFrame();
  PhysAddr dst = f3 << kPageShift;
  mem.Copy(dst, src, 20);
  std::vector<char> out(20);
  mem.Read(dst, std::as_writable_bytes(std::span(out)));
  EXPECT_EQ(out, data);
  (void)f2;
}

TEST(PageTable, MapTranslateUnmap) {
  PageTable pt(1);
  ASSERT_TRUE(pt.MapPage(0x40000000, 99, PageFlags{.writable = true}, 5).ok());
  auto pa = pt.Translate(0x40000123);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa, (99ull << kPageShift) | 0x123);
  EXPECT_TRUE(pt.UnmapPage(0x40000000).ok());
  EXPECT_FALSE(pt.Translate(0x40000000).has_value());
}

TEST(PageTable, DoubleMapFails) {
  PageTable pt(1);
  ASSERT_TRUE(pt.MapPage(0x1000, 1, PageFlags{}, 1).ok());
  EXPECT_EQ(pt.MapPage(0x1000, 2, PageFlags{}, 1).code(), base::ErrorCode::kAlreadyExists);
}

TEST(PageTable, SetTagRetags) {
  PageTable pt(1);
  ASSERT_TRUE(pt.MapPage(0x1000, 1, PageFlags{}, 7).ok());
  ASSERT_TRUE(pt.SetTag(0x1000, 9).ok());
  EXPECT_EQ(pt.Lookup(0x1000)->tag, 9u);
  EXPECT_EQ(pt.SetTag(0x9000, 9).code(), base::ErrorCode::kNotFound);
}

TEST(Machine, PageTableLifecycle) {
  Machine m(2);
  PageTable& pt = m.CreatePageTable();
  EXPECT_EQ(&m.page_table(pt.id()), &pt);
  EXPECT_EQ(m.num_cpus(), 2u);
  m.DestroyPageTable(pt.id());
}

TEST(Machine, CpusHaveDistinctTlbs) {
  Machine m(2);
  m.cpu(0).tlb().Translate(0x5000, 1);
  // CPU 1's TLB must still miss.
  EXPECT_EQ(m.cpu(1).tlb().Translate(0x5000, 1), m.costs().tlb_walk);
}

}  // namespace
}  // namespace dipc::hw
