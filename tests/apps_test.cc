// Integration tests for the application substrates: the OLTP web stack and
// the netpipe driver-isolation harness. These validate the *shapes* the
// paper's macro-benchmarks rely on; exact numbers live in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "apps/netpipe/netpipe.h"
#include "apps/oltp/oltp.h"

namespace dipc::apps {
namespace {

OltpConfig QuickConfig(OltpMode mode, DbStorage storage, int threads) {
  OltpConfig c;
  c.mode = mode;
  c.storage = storage;
  c.threads = threads;
  c.warmup = sim::Duration::Millis(20);
  c.measure = sim::Duration::Millis(150);
  return c;
}

TEST(Oltp, AllModesMakeProgress) {
  for (OltpMode mode :
       {OltpMode::kLinuxIpc, OltpMode::kChan, OltpMode::kDipc, OltpMode::kIdeal}) {
    OltpResult r = RunOltp(QuickConfig(mode, DbStorage::kMemory, 16));
    EXPECT_GT(r.operations, 20u) << OltpModeName(mode);
    EXPECT_GT(r.ops_per_min, 0.0);
    EXPECT_GT(r.avg_latency_ms, 0.0);
  }
}

TEST(Oltp, ChanModeSitsBetweenLinuxAndIdeal) {
  // The channel-backed stack removes the copy+glue share of the Linux
  // overhead but keeps the service threads, so it must land strictly
  // between the Linux and Ideal design points.
  OltpResult linux_r = RunOltp(QuickConfig(OltpMode::kLinuxIpc, DbStorage::kMemory, 16));
  OltpResult chan_r = RunOltp(QuickConfig(OltpMode::kChan, DbStorage::kMemory, 16));
  OltpResult ideal_r = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kMemory, 16));
  EXPECT_GT(chan_r.ops_per_min, linux_r.ops_per_min);
  EXPECT_LT(chan_r.ops_per_min, ideal_r.ops_per_min);
}

TEST(Oltp, IdealBeatsLinuxAndDipcIsClose) {
  // The core claim of Figures 1 and 8: Ideal >> Linux, dIPC >= 94% of Ideal.
  OltpResult linux_r = RunOltp(QuickConfig(OltpMode::kLinuxIpc, DbStorage::kMemory, 64));
  OltpResult dipc_r = RunOltp(QuickConfig(OltpMode::kDipc, DbStorage::kMemory, 64));
  OltpResult ideal_r = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kMemory, 64));
  EXPECT_GT(ideal_r.ops_per_min, linux_r.ops_per_min * 1.3);
  EXPECT_GT(dipc_r.ops_per_min, ideal_r.ops_per_min * 0.90);
  EXPECT_LE(dipc_r.ops_per_min, ideal_r.ops_per_min * 1.02);
}

TEST(Oltp, LinuxSpendsMoreKernelTimeThanIdeal) {
  OltpResult linux_r = RunOltp(QuickConfig(OltpMode::kLinuxIpc, DbStorage::kMemory, 64));
  OltpResult ideal_r = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kMemory, 64));
  EXPECT_GT(linux_r.KernelFrac(), ideal_r.KernelFrac());
  EXPECT_GT(ideal_r.UserFrac(), linux_r.UserFrac());
}

TEST(Oltp, CrossDomainCallsPerOpMatchPaper) {
  // §7.5: ~211 cross-domain calls per operation.
  OltpResult r = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kMemory, 16));
  ASSERT_GT(r.operations, 0u);
  double calls_per_op = static_cast<double>(r.cross_domain_calls) /
                        static_cast<double>(r.operations);
  EXPECT_NEAR(calls_per_op, 212.0, 8.0);
}

TEST(Oltp, DiskConfigIsSlowerThanMemory) {
  OltpResult disk = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kDisk, 64));
  OltpResult mem = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kMemory, 64));
  EXPECT_LT(disk.ops_per_min, mem.ops_per_min);
}

TEST(Oltp, DiskCompressesTheSpeedupAtHighConcurrency) {
  // Fig. 8: on-disk speedups at 512 threads (~1.1x) are far below the
  // in-memory ones (>1.15x) because the disk saturates.
  OltpResult linux_d = RunOltp(QuickConfig(OltpMode::kLinuxIpc, DbStorage::kDisk, 128));
  OltpResult ideal_d = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kDisk, 128));
  OltpResult linux_m = RunOltp(QuickConfig(OltpMode::kLinuxIpc, DbStorage::kMemory, 128));
  OltpResult ideal_m = RunOltp(QuickConfig(OltpMode::kIdeal, DbStorage::kMemory, 128));
  double speedup_disk = ideal_d.ops_per_min / linux_d.ops_per_min;
  double speedup_mem = ideal_m.ops_per_min / linux_m.ops_per_min;
  EXPECT_LT(speedup_disk, speedup_mem);
}

TEST(Oltp, ProxyCostAblationSlowsDipc) {
  OltpConfig base = QuickConfig(OltpMode::kDipc, DbStorage::kMemory, 32);
  OltpConfig scaled = base;
  scaled.proxy_cost_scale = 14.0;  // the §7.5 slack bound
  OltpResult r1 = RunOltp(base);
  OltpResult r14 = RunOltp(scaled);
  EXPECT_LT(r14.ops_per_min, r1.ops_per_min);
  // Even at 14x the proxy cost, throughput must not collapse (the paper's
  // argument that hardware-crossing costs have large slack).
  EXPECT_GT(r14.ops_per_min, r1.ops_per_min * 0.5);
}

TEST(Oltp, WorstCaseCapLoadsCostRoughlyTenPercent) {
  OltpConfig base = QuickConfig(OltpMode::kDipc, DbStorage::kMemory, 32);
  OltpConfig caps = base;
  caps.worst_case_cap_loads = true;
  OltpResult r_base = RunOltp(base);
  OltpResult r_caps = RunOltp(caps);
  double overhead = 1.0 - r_caps.ops_per_min / r_base.ops_per_min;
  EXPECT_GT(overhead, 0.04);
  EXPECT_LT(overhead, 0.25);  // paper models ~12%
}

TEST(Netpipe, InlineLatencyNearWire) {
  NetpipeResult r = RunNetpipe({.isolation = DriverIsolation::kInline, .transfer_bytes = 1});
  // One-way ~ nic_base_latency plus verb costs.
  EXPECT_GT(r.latency_us, 1.0);
  EXPECT_LT(r.latency_us, 4.0);
}

TEST(Netpipe, IsolationOverheadOrdering) {
  // Fig. 7: dIPC ~1%, syscalls ~10%, IPC >100% latency overhead.
  auto lat = [](DriverIsolation iso) {
    return RunNetpipe({.isolation = iso, .transfer_bytes = 4}).latency_us;
  };
  double base = lat(DriverIsolation::kInline);
  double dipc_dom = lat(DriverIsolation::kDipcDomain);
  double dipc_proc = lat(DriverIsolation::kDipcProcess);
  double kern = lat(DriverIsolation::kKernel);
  double sem = lat(DriverIsolation::kSemaphore);
  double pipe = lat(DriverIsolation::kPipe);
  EXPECT_LT(dipc_dom, dipc_proc);
  EXPECT_LT(dipc_proc, kern);
  EXPECT_LT(kern, sem);
  EXPECT_LT(sem, pipe);
  // dIPC stays within a few percent of bare metal; full IPC does not.
  EXPECT_LT((dipc_dom - base) / base, 0.05);
  EXPECT_GT((sem - base) / base, 0.5);
}

TEST(Netpipe, ChannelDriverBeatsPipeAndBurstsAmortize) {
  // The zero-copy channel transport must beat the copying pipe transport at
  // equal semantics (ping-pong), and batched streaming bursts must amortize
  // the per-request toll by well over 2x.
  double pipe =
      RunNetpipe({.isolation = DriverIsolation::kPipe, .transfer_bytes = 64, .rounds = 64})
          .latency_us;
  double chan =
      RunNetpipe({.isolation = DriverIsolation::kChannel, .transfer_bytes = 64, .rounds = 64})
          .latency_us;
  EXPECT_LT(chan, pipe);
  double b1 = RunNetpipe({.isolation = DriverIsolation::kChannel,
                          .transfer_bytes = 64,
                          .rounds = 64,
                          .burst = 1})
                  .round_trip_us;
  double b16 = RunNetpipe({.isolation = DriverIsolation::kChannel,
                           .transfer_bytes = 64,
                           .rounds = 64,
                           .burst = 16})
                   .round_trip_us;  // per-request equivalent in burst mode
  EXPECT_LT(b16 * 2.0, b1);
}

TEST(Netpipe, BandwidthGrowsWithTransferSize) {
  auto bw = [](uint64_t n) {
    return RunNetpipe({.isolation = DriverIsolation::kInline, .transfer_bytes = n, .rounds = 32})
        .bandwidth_mbps;
  };
  EXPECT_LT(bw(64), bw(1024));
  EXPECT_LT(bw(1024), bw(4096));
}

TEST(Netpipe, PipeCopiesHurtBandwidthMoreThanSem) {
  auto bw = [](DriverIsolation iso) {
    return RunNetpipe({.isolation = iso, .transfer_bytes = 4096, .rounds = 32}).bandwidth_mbps;
  };
  double b_dipc = bw(DriverIsolation::kDipcDomain);
  double b_sem = bw(DriverIsolation::kSemaphore);
  double b_pipe = bw(DriverIsolation::kPipe);
  EXPECT_GT(b_dipc, b_sem);
  EXPECT_GT(b_sem, b_pipe);
}

}  // namespace
}  // namespace dipc::apps
