// Unit tests for the zero-copy channel subsystem (src/chan/): SPSC ring
// wrap-around, futex-style blocking, MPMC fairness, capability move
// semantics (sender revocation), and dead-peer teardown.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chan/channel.h"
#include "chan/mpmc_queue.h"
#include "chan/ring.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "hw/machine.h"
#include "os/kernel.h"

namespace dipc::chan {
namespace {

using base::ErrorCode;
using sim::Duration;

class ChanTest : public ::testing::Test {
 protected:
  ChanTest() : machine_(4), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_) {}

  hw::VirtAddr MapBuf(os::Process& proc, uint64_t len) {
    auto va = kernel_.MapAnonymous(proc, len, hw::PageFlags{.writable = true});
    DIPC_CHECK(va.ok());
    return va.value();
  }

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  core::Dipc dipc_;
};

// --- SPSC ring ---

TEST_F(ChanTest, RingTransfersBytesAcrossWrapBoundary) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  // Capacity 256 with 200-byte messages: the second message wraps.
  Ring ring(kernel_, proc, 256, proc.default_domain());
  hw::VirtAddr src = MapBuf(proc, hw::kPageSize);
  hw::VirtAddr dst = MapBuf(proc, hw::kPageSize);
  constexpr uint64_t kMsg = 200;
  std::vector<std::string> got;
  kernel_.Spawn(proc, "producer", [&](os::Env env) -> sim::Task<void> {
    for (int round = 0; round < 3; ++round) {
      std::string payload(kMsg, static_cast<char>('a' + round));
      EXPECT_TRUE(
          env.kernel->UserWrite(*env.self, src, std::as_bytes(std::span(payload))).ok());
      auto n = co_await ring.Write(env, src, kMsg);
      EXPECT_TRUE(n.ok());
      EXPECT_EQ(n.value(), kMsg);
    }
    ring.CloseWriteEnd();
  });
  kernel_.Spawn(proc, "consumer", [&](os::Env env) -> sim::Task<void> {
    while (true) {
      uint64_t have = 0;
      while (have < kMsg) {
        auto n = co_await ring.Read(env, dst + have, kMsg - have);
        EXPECT_TRUE(n.ok());
        if (n.value() == 0) {
          EXPECT_EQ(have, 0u);  // EOF lands on a message boundary here
          co_return;
        }
        have += n.value();
      }
      std::vector<char> buf(kMsg);
      EXPECT_TRUE(
          env.kernel->UserRead(*env.self, dst, std::as_writable_bytes(std::span(buf))).ok());
      got.emplace_back(buf.begin(), buf.end());
    }
  });
  kernel_.Run();
  ASSERT_EQ(got.size(), 3u);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(got[round], std::string(kMsg, static_cast<char>('a' + round)));
  }
}

TEST_F(ChanTest, RingUncontendedStaysInUserSpace) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  Ring ring(kernel_, proc, 4096, proc.default_domain());
  hw::VirtAddr buf = MapBuf(proc, hw::kPageSize);
  kernel_.Spawn(proc, "t", [&](os::Env env) -> sim::Task<void> {
    auto w = co_await ring.Write(env, buf, 512);
    EXPECT_TRUE(w.ok());
    auto r = co_await ring.Read(env, buf, 512);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 512u);
  });
  kernel_.Run();
  // No peer ever blocked, so the futex path (and the kernel) never ran.
  os::TimeBreakdown b = kernel_.accounting().Summed();
  EXPECT_EQ(b[os::TimeCat::kSyscallCrossing], Duration::Zero());
  EXPECT_EQ(b[os::TimeCat::kKernel], Duration::Zero());
}

TEST_F(ChanTest, RingBlocksWriterWhenFullUntilReaderDrains) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  Ring ring(kernel_, proc, 1024, proc.default_domain());
  hw::VirtAddr src = MapBuf(proc, hw::kPageSize);
  hw::VirtAddr dst = MapBuf(proc, hw::kPageSize);
  double write_done_at = 0;
  kernel_.Spawn(proc, "writer", [&](os::Env env) -> sim::Task<void> {
    auto n = co_await ring.Write(env, src, 2048);  // twice the capacity
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 2048u);
    write_done_at = env.kernel->now().micros();
    ring.CloseWriteEnd();
  });
  uint64_t read_total = 0;
  kernel_.Spawn(proc, "reader", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // let the ring fill
    while (true) {
      auto n = co_await ring.Read(env, dst, 512);
      EXPECT_TRUE(n.ok());
      if (n.value() == 0) {
        co_return;
      }
      read_total += n.value();
    }
  });
  kernel_.Run();
  EXPECT_EQ(read_total, 2048u);
  EXPECT_GE(write_done_at, 50.0);  // writer had to wait for the sleeping reader
}

// --- MPMC queue ---

TEST_F(ChanTest, MpmcBlockingPushOnFullAndPopOnEmpty) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 2, proc.default_domain());
  std::vector<uint64_t> popped;
  kernel_.Spawn(proc, "producer", [&](os::Env env) -> sim::Task<void> {
    for (uint64_t v = 1; v <= 5; ++v) {
      EXPECT_TRUE((co_await q.Push(env, v)).ok());
    }
    q.Close();
  });
  kernel_.Spawn(proc, "consumer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(20));  // force pushes to block
    while (true) {
      auto v = co_await q.Pop(env);
      if (!v.ok()) {
        EXPECT_EQ(v.code(), ErrorCode::kBrokenChannel);
        co_return;
      }
      popped.push_back(v.value());
    }
  });
  kernel_.Run();
  EXPECT_EQ(popped, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_GT(q.blocked_pushes(), 0u);  // capacity 2 forced producer blocking
}

TEST_F(ChanTest, MpmcFifoWakeupsAreFairAcrossConsumers) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 4, proc.default_domain());
  constexpr uint64_t kItems = 10;
  std::vector<uint64_t> got_a, got_b;
  auto consumer = [&](std::vector<uint64_t>& out) {
    return [&q, &out](os::Env env) -> sim::Task<void> {
      while (true) {
        auto v = co_await q.Pop(env);
        if (!v.ok()) {
          co_return;
        }
        out.push_back(v.value());
      }
    };
  };
  kernel_.Spawn(proc, "consumer-a", consumer(got_a), /*pin_cpu=*/1);
  kernel_.Spawn(proc, "consumer-b", consumer(got_b), /*pin_cpu=*/2);
  kernel_.Spawn(
      proc, "producer",
      [&](os::Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Micros(10));  // park both consumers first
        for (uint64_t v = 0; v < kItems; ++v) {
          EXPECT_TRUE((co_await q.Push(env, v)).ok());
        }
        q.Close();
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_EQ(got_a.size() + got_b.size(), kItems);
  // FIFO futex wakeups under the deterministic event queue split the work
  // evenly; neither consumer may starve.
  EXPECT_GE(got_a.size(), 3u) << "consumer-a starved";
  EXPECT_GE(got_b.size(), 3u) << "consumer-b starved";
}

// --- Channel: zero-copy ownership transfer ---

TEST_F(ChanTest, ChannelRoundTripIsZeroCopy) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  const std::string payload = "granted, not copied";
  std::string received;
  hw::VirtAddr sent_va = 0;
  hw::VirtAddr recv_va = 0;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    sent_va = buf.value().va;
    EXPECT_TRUE(
        env.kernel->UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(payload)))
            .ok());
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), payload.size())).ok());
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);
    EXPECT_TRUE(msg.ok());
    recv_va = msg.value().va;
    std::vector<char> buf(msg.value().len);
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, msg.value().va, std::as_writable_bytes(std::span(buf)))
            .ok());
    received.assign(buf.begin(), buf.end());
    EXPECT_TRUE((co_await chan.Release(env, msg.value())).ok());
  });
  kernel_.Run();
  EXPECT_EQ(received, payload);
  // Zero copy: the receiver reads the exact buffer the sender wrote.
  EXPECT_EQ(sent_va, recv_va);
  EXPECT_EQ(chan.sends(), 1u);
  EXPECT_EQ(chan.recvs(), 1u);
}

TEST_F(ChanTest, SenderAccessFaultsAfterSend) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode before = ErrorCode::kOk;
  ErrorCode after = ErrorCode::kOk;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    hw::VirtAddr va = buf.value().va;
    auto pre = co_await env.kernel->TouchUser(env, va, 64, hw::AccessType::kWrite);
    before = pre.code();
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), 64)).ok());
    // Ownership moved: the sender's capability was revoked, and its domain
    // never had APL access to the data domain.
    auto post = co_await env.kernel->TouchUser(env, va, 64, hw::AccessType::kWrite);
    after = post.code();
  });
  kernel_.Run();
  EXPECT_EQ(before, ErrorCode::kOk);
  EXPECT_EQ(after, ErrorCode::kFault);
}

TEST_F(ChanTest, ReceiverViewIsReadOnly) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode read_code = ErrorCode::kFault;
  ErrorCode write_code = ErrorCode::kOk;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), 128)).ok());
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);
    EXPECT_TRUE(msg.ok());
    auto r = co_await env.kernel->TouchUser(env, msg.value().va, 128, hw::AccessType::kRead);
    read_code = r.code();
    // Published messages are immutable (§3): the receiver's capability is
    // read-only, so writes fault.
    auto w = co_await env.kernel->TouchUser(env, msg.value().va, 128, hw::AccessType::kWrite);
    write_code = w.code();
  });
  kernel_.Run();
  EXPECT_EQ(read_code, ErrorCode::kOk);
  EXPECT_EQ(write_code, ErrorCode::kFault);
}

TEST_F(ChanTest, AcquireBlocksWhenAllBuffersInFlight) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  double third_acquire_at = 0;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto buf = co_await chan.AcquireBuf(env);  // third call blocks: 2 slots
      EXPECT_TRUE(buf.ok());
      if (i == 2) {
        third_acquire_at = env.kernel->now().micros();
      }
      EXPECT_TRUE((co_await chan.Send(env, buf.value(), 32)).ok());
    }
    chan.Close();
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    while (true) {
      auto msg = co_await chan.Recv(env);
      if (!msg.ok()) {
        EXPECT_EQ(msg.code(), ErrorCode::kBrokenChannel);  // orderly close
        co_return;
      }
      EXPECT_TRUE((co_await chan.Release(env, msg.value())).ok());
    }
  });
  kernel_.Run();
  // The third acquire had to wait for the consumer's first Release.
  EXPECT_GE(third_acquire_at, 30.0);
}

TEST_F(ChanTest, RecvOnDeadPeerSurfacesError) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode blocked_recv = ErrorCode::kOk;
  ErrorCode later_recv = ErrorCode::kOk;
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);  // blocks: nothing was ever sent
    blocked_recv = msg.code();
    auto again = co_await chan.Recv(env);  // fails immediately once broken
    later_recv = again.code();
  });
  os::Process& killer_proc = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer_proc, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(25));
    dipc_.KillProcess(prod);  // producer crashes with the consumer parked
  });
  kernel_.Run();
  EXPECT_EQ(blocked_recv, ErrorCode::kCalleeFailed);
  EXPECT_EQ(later_recv, ErrorCode::kCalleeFailed);
  EXPECT_EQ(chan.broken(), ErrorCode::kCalleeFailed);
}

TEST_F(ChanTest, PeerDeathRevokesInFlightCapabilities) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode touch_after_death = ErrorCode::kOk;
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);
    EXPECT_TRUE(msg.ok());
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // killer runs here
    auto s = co_await env.kernel->TouchUser(env, msg.value().va, 16, hw::AccessType::kRead);
    touch_after_death = s.code();
    // Releasing a message whose peer died must surface the crash, not a
    // caller error (the teardown already revoked the capability).
    auto rel = co_await chan.Release(env, msg.value());
    EXPECT_EQ(rel.code(), ErrorCode::kCalleeFailed);
  });
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), 16)).ok());
  });
  os::Process& killer_proc = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer_proc, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(25));
    dipc_.KillProcess(prod);
  });
  kernel_.Run();
  // The crash unwound every outstanding grant, including the receiver's.
  EXPECT_EQ(touch_after_death, ErrorCode::kFault);
}

TEST_F(ChanTest, EndpointsExchangeThroughEntryRequest) {
  // The consumer publishes an "open" entry; the producer entry_requests it
  // and receives a SenderEndpoint fd through the call — the dIPC-native way
  // to hand out channel ends (§5.2.2 delegation).
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  std::shared_ptr<Channel> chan;
  core::EntryDesc entry;
  entry.name = "chan.open";
  entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
  entry.policy = core::IsolationPolicy::Low();
  entry.fn = [&](os::Env env, core::CallArgs) -> sim::Task<uint64_t> {
    auto ch = Channel::Create(dipc_, prod, cons, {.slots = 4, .buf_bytes = 4096});
    DIPC_CHECK(ch.ok());
    chan = ch.value();
    os::Fd fd = prod.fds().Insert(std::make_shared<SenderEndpoint>(chan));
    (void)env;
    co_return static_cast<uint64_t>(fd);
  };
  auto handle = dipc_.EntryRegister(cons, *dipc_.DomDefault(cons), {entry});
  ASSERT_TRUE(handle.ok());
  auto req = dipc_.EntryRequest(prod, *handle.value(),
                                {{entry.signature, core::IsolationPolicy::Low()}});
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(prod), *req.value().proxy_domain).ok());
  core::ProxyRef proxy = req.value().proxies[0];

  std::string received;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    uint64_t fd = co_await proxy.Call(env, core::CallArgs{});
    EXPECT_EQ(env.self->TakeError(), ErrorCode::kOk);
    auto ep = prod.fds().GetAs<SenderEndpoint>(static_cast<os::Fd>(fd));
    EXPECT_NE(ep, nullptr);
    auto buf = co_await ep->AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    const std::string msg = "hello over entry_request";
    EXPECT_TRUE(
        env.kernel->UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(msg))).ok());
    EXPECT_TRUE((co_await ep->Send(env, buf.value(), msg.size())).ok());
    ep->Close();
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    while (chan == nullptr) {  // wait for the producer's open call
      co_await env.kernel->Sleep(env, Duration::Micros(5));
    }
    ReceiverEndpoint ep(chan);
    auto msg = co_await ep.Recv(env);
    EXPECT_TRUE(msg.ok());
    std::vector<char> buf(msg.value().len);
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, msg.value().va, std::as_writable_bytes(std::span(buf)))
            .ok());
    received.assign(buf.begin(), buf.end());
    EXPECT_TRUE((co_await ep.Release(env, msg.value())).ok());
  });
  kernel_.Run();
  EXPECT_EQ(received, "hello over entry_request");
}

}  // namespace
}  // namespace dipc::chan
