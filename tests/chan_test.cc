// Unit tests for the zero-copy channel subsystem (src/chan/): SPSC ring
// wrap-around, futex-style blocking, MPMC fairness, capability move
// semantics (sender revocation), and dead-peer teardown.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chan/channel.h"
#include "chan/mpmc_queue.h"
#include "chan/ring.h"
#include "os/deadline.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "hw/machine.h"
#include "os/kernel.h"
#include "sim/random.h"

namespace dipc::chan {
namespace {

using base::ErrorCode;
using sim::Duration;

class ChanTest : public ::testing::Test {
 protected:
  ChanTest() : machine_(4), codoms_(machine_), kernel_(machine_, codoms_), dipc_(kernel_) {}

  hw::VirtAddr MapBuf(os::Process& proc, uint64_t len) {
    auto va = kernel_.MapAnonymous(proc, len, hw::PageFlags{.writable = true});
    DIPC_CHECK(va.ok());
    return va.value();
  }

  hw::Machine machine_;
  codoms::Codoms codoms_;
  os::Kernel kernel_;
  core::Dipc dipc_;
};

// --- SPSC ring ---

TEST_F(ChanTest, RingTransfersBytesAcrossWrapBoundary) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  // Capacity 256 with 200-byte messages: the second message wraps.
  Ring ring(kernel_, proc, 256, proc.default_domain());
  hw::VirtAddr src = MapBuf(proc, hw::kPageSize);
  hw::VirtAddr dst = MapBuf(proc, hw::kPageSize);
  constexpr uint64_t kMsg = 200;
  std::vector<std::string> got;
  kernel_.Spawn(proc, "producer", [&](os::Env env) -> sim::Task<void> {
    for (int round = 0; round < 3; ++round) {
      std::string payload(kMsg, static_cast<char>('a' + round));
      EXPECT_TRUE(
          env.kernel->UserWrite(*env.self, src, std::as_bytes(std::span(payload))).ok());
      auto n = co_await ring.Write(env, src, kMsg);
      EXPECT_TRUE(n.ok());
      EXPECT_EQ(n.value(), kMsg);
    }
    ring.CloseWriteEnd();
  });
  kernel_.Spawn(proc, "consumer", [&](os::Env env) -> sim::Task<void> {
    while (true) {
      uint64_t have = 0;
      while (have < kMsg) {
        auto n = co_await ring.Read(env, dst + have, kMsg - have);
        EXPECT_TRUE(n.ok());
        if (n.value() == 0) {
          EXPECT_EQ(have, 0u);  // EOF lands on a message boundary here
          co_return;
        }
        have += n.value();
      }
      std::vector<char> buf(kMsg);
      EXPECT_TRUE(
          env.kernel->UserRead(*env.self, dst, std::as_writable_bytes(std::span(buf))).ok());
      got.emplace_back(buf.begin(), buf.end());
    }
  });
  kernel_.Run();
  ASSERT_EQ(got.size(), 3u);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(got[round], std::string(kMsg, static_cast<char>('a' + round)));
  }
}

TEST_F(ChanTest, RingUncontendedStaysInUserSpace) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  Ring ring(kernel_, proc, 4096, proc.default_domain());
  hw::VirtAddr buf = MapBuf(proc, hw::kPageSize);
  kernel_.Spawn(proc, "t", [&](os::Env env) -> sim::Task<void> {
    auto w = co_await ring.Write(env, buf, 512);
    EXPECT_TRUE(w.ok());
    auto r = co_await ring.Read(env, buf, 512);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 512u);
  });
  kernel_.Run();
  // No peer ever blocked, so the futex path (and the kernel) never ran.
  os::TimeBreakdown b = kernel_.accounting().Summed();
  EXPECT_EQ(b[os::TimeCat::kSyscallCrossing], Duration::Zero());
  EXPECT_EQ(b[os::TimeCat::kKernel], Duration::Zero());
}

TEST_F(ChanTest, RingBlocksWriterWhenFullUntilReaderDrains) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  Ring ring(kernel_, proc, 1024, proc.default_domain());
  hw::VirtAddr src = MapBuf(proc, hw::kPageSize);
  hw::VirtAddr dst = MapBuf(proc, hw::kPageSize);
  double write_done_at = 0;
  kernel_.Spawn(proc, "writer", [&](os::Env env) -> sim::Task<void> {
    auto n = co_await ring.Write(env, src, 2048);  // twice the capacity
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 2048u);
    write_done_at = env.kernel->now().micros();
    ring.CloseWriteEnd();
  });
  uint64_t read_total = 0;
  kernel_.Spawn(proc, "reader", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // let the ring fill
    while (true) {
      auto n = co_await ring.Read(env, dst, 512);
      EXPECT_TRUE(n.ok());
      if (n.value() == 0) {
        co_return;
      }
      read_total += n.value();
    }
  });
  kernel_.Run();
  EXPECT_EQ(read_total, 2048u);
  EXPECT_GE(write_done_at, 50.0);  // writer had to wait for the sleeping reader
}

// --- MPMC queue ---

TEST_F(ChanTest, MpmcBlockingPushOnFullAndPopOnEmpty) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 2, proc.default_domain());
  std::vector<uint64_t> popped;
  kernel_.Spawn(proc, "producer", [&](os::Env env) -> sim::Task<void> {
    for (uint64_t v = 1; v <= 5; ++v) {
      EXPECT_TRUE((co_await q.Push(env, v)).ok());
    }
    q.Close();
  });
  kernel_.Spawn(proc, "consumer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(20));  // force pushes to block
    while (true) {
      auto v = co_await q.Pop(env);
      if (!v.ok()) {
        EXPECT_EQ(v.code(), ErrorCode::kBrokenChannel);
        co_return;
      }
      popped.push_back(v.value());
    }
  });
  kernel_.Run();
  EXPECT_EQ(popped, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_GT(q.blocked_pushes(), 0u);  // capacity 2 forced producer blocking
}

TEST_F(ChanTest, MpmcFifoWakeupsAreFairAcrossConsumers) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 4, proc.default_domain());
  constexpr uint64_t kItems = 10;
  std::vector<uint64_t> got_a, got_b;
  auto consumer = [&](std::vector<uint64_t>& out) {
    return [&q, &out](os::Env env) -> sim::Task<void> {
      while (true) {
        auto v = co_await q.Pop(env);
        if (!v.ok()) {
          co_return;
        }
        out.push_back(v.value());
      }
    };
  };
  kernel_.Spawn(proc, "consumer-a", consumer(got_a), /*pin_cpu=*/1);
  kernel_.Spawn(proc, "consumer-b", consumer(got_b), /*pin_cpu=*/2);
  kernel_.Spawn(
      proc, "producer",
      [&](os::Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Micros(10));  // park both consumers first
        for (uint64_t v = 0; v < kItems; ++v) {
          EXPECT_TRUE((co_await q.Push(env, v)).ok());
        }
        q.Close();
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_EQ(got_a.size() + got_b.size(), kItems);
  // FIFO futex wakeups under the deterministic event queue split the work
  // evenly; neither consumer may starve.
  EXPECT_GE(got_a.size(), 3u) << "consumer-a starved";
  EXPECT_GE(got_b.size(), 3u) << "consumer-b starved";
}

TEST_F(ChanTest, MpmcTightCapacityStressLosesNoWakeups) {
  // Regression: FutexBlock used to park unconditionally after its syscall
  // suspension points, so a wake issued while the blocker was still
  // entering the kernel found no parked thread and was lost — both sides
  // could park forever. Capacity 1 with peers on different CPUs crosses
  // that window on every item; a lost wake leaves the sim idle with items
  // undelivered.
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 1, proc.default_domain());
  constexpr uint64_t kItems = 64;
  std::vector<uint64_t> popped;
  kernel_.Spawn(
      proc, "producer",
      [&](os::Env env) -> sim::Task<void> {
        for (uint64_t v = 0; v < kItems; ++v) {
          EXPECT_TRUE((co_await q.Push(env, v)).ok());
        }
        q.Close();
      },
      /*pin_cpu=*/0);
  kernel_.Spawn(
      proc, "consumer",
      [&](os::Env env) -> sim::Task<void> {
        while (true) {
          auto v = co_await q.Pop(env);
          if (!v.ok()) {
            co_return;
          }
          popped.push_back(v.value());
        }
      },
      /*pin_cpu=*/1);
  kernel_.Run();
  ASSERT_EQ(popped.size(), kItems);
  for (uint64_t v = 0; v < kItems; ++v) {
    EXPECT_EQ(popped[v], v);
  }
}

TEST_F(ChanTest, MpmcConcurrentProducersNeverDoubleClaimASlot) {
  // Regression: Push used to suspend (co_await Spend) between the full check
  // and the tail_/count_ update, so two producers resuming at the same sim
  // time could both pass the check and write the same slot. With capacity 1
  // the second producer must block instead, and both values must survive.
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 1, proc.default_domain());
  auto producer = [&q](uint64_t v) {
    return [&q, v](os::Env env) -> sim::Task<void> {
      EXPECT_TRUE((co_await q.Push(env, v)).ok());
    };
  };
  kernel_.Spawn(proc, "producer-a", producer(1), /*pin_cpu=*/0);
  kernel_.Spawn(proc, "producer-b", producer(2), /*pin_cpu=*/1);
  std::vector<uint64_t> popped;
  kernel_.Spawn(
      proc, "consumer",
      [&](os::Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Micros(20));  // let the producers race
        for (int i = 0; i < 2; ++i) {
          auto v = co_await q.Pop(env);
          EXPECT_TRUE(v.ok());
          popped.push_back(v.value());
        }
      },
      /*pin_cpu=*/2);
  kernel_.Run();
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(popped, (std::vector<uint64_t>{1, 2}));  // nothing lost or duplicated
}

TEST_F(ChanTest, MpmcConcurrentConsumersNeverPopTheSameSlot) {
  // Regression, consumer side: with one value queued and two consumers
  // racing, Pop used to let both pass the empty check before either retired
  // head_/count_, handing the same slot to both. Now one must block until
  // the producer publishes the second value.
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 4, proc.default_domain());
  q.Prime(7);  // exactly one value available when the consumers race
  std::vector<uint64_t> got;
  auto consumer = [&q, &got](os::Env env) -> sim::Task<void> {
    auto v = co_await q.Pop(env);
    EXPECT_TRUE(v.ok());
    got.push_back(v.value());
  };
  kernel_.Spawn(proc, "consumer-a", consumer, /*pin_cpu=*/1);
  kernel_.Spawn(proc, "consumer-b", consumer, /*pin_cpu=*/2);
  kernel_.Spawn(
      proc, "producer",
      [&](os::Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Micros(20));  // let the consumers race
        EXPECT_TRUE((co_await q.Push(env, 9)).ok());
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<uint64_t>{7, 9}));  // no duplicate delivery
}

// --- Channel: zero-copy ownership transfer ---

TEST_F(ChanTest, ChannelRoundTripIsZeroCopy) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  const std::string payload = "granted, not copied";
  std::string received;
  hw::VirtAddr sent_va = 0;
  hw::VirtAddr recv_va = 0;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    sent_va = buf.value().va;
    EXPECT_TRUE(
        env.kernel->UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(payload)))
            .ok());
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), payload.size())).ok());
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);
    EXPECT_TRUE(msg.ok());
    recv_va = msg.value().va;
    std::vector<char> buf(msg.value().len);
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, msg.value().va, std::as_writable_bytes(std::span(buf)))
            .ok());
    received.assign(buf.begin(), buf.end());
    EXPECT_TRUE((co_await chan.Release(env, msg.value())).ok());
  });
  kernel_.Run();
  EXPECT_EQ(received, payload);
  // Zero copy: the receiver reads the exact buffer the sender wrote.
  EXPECT_EQ(sent_va, recv_va);
  EXPECT_EQ(chan.sends(), 1u);
  EXPECT_EQ(chan.recvs(), 1u);
}

TEST_F(ChanTest, SenderAccessFaultsAfterSend) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode before = ErrorCode::kOk;
  ErrorCode after = ErrorCode::kOk;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    hw::VirtAddr va = buf.value().va;
    auto pre = co_await env.kernel->TouchUser(env, va, 64, hw::AccessType::kWrite);
    before = pre.code();
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), 64)).ok());
    // Ownership moved: the sender's capability was revoked, and its domain
    // never had APL access to the data domain.
    auto post = co_await env.kernel->TouchUser(env, va, 64, hw::AccessType::kWrite);
    after = post.code();
  });
  kernel_.Run();
  EXPECT_EQ(before, ErrorCode::kOk);
  EXPECT_EQ(after, ErrorCode::kFault);
}

TEST_F(ChanTest, ReceiverViewIsReadOnly) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode read_code = ErrorCode::kFault;
  ErrorCode write_code = ErrorCode::kOk;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), 128)).ok());
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);
    EXPECT_TRUE(msg.ok());
    auto r = co_await env.kernel->TouchUser(env, msg.value().va, 128, hw::AccessType::kRead);
    read_code = r.code();
    // Published messages are immutable (§3): the receiver's capability is
    // read-only, so writes fault.
    auto w = co_await env.kernel->TouchUser(env, msg.value().va, 128, hw::AccessType::kWrite);
    write_code = w.code();
  });
  kernel_.Run();
  EXPECT_EQ(read_code, ErrorCode::kOk);
  EXPECT_EQ(write_code, ErrorCode::kFault);
}

TEST_F(ChanTest, AcquireBlocksWhenAllBuffersInFlight) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  double third_acquire_at = 0;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto buf = co_await chan.AcquireBuf(env);  // third call blocks: 2 slots
      EXPECT_TRUE(buf.ok());
      if (i == 2) {
        third_acquire_at = env.kernel->now().micros();
      }
      EXPECT_TRUE((co_await chan.Send(env, buf.value(), 32)).ok());
    }
    chan.Close();
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(30));
    while (true) {
      auto msg = co_await chan.Recv(env);
      if (!msg.ok()) {
        EXPECT_EQ(msg.code(), ErrorCode::kBrokenChannel);  // orderly close
        co_return;
      }
      EXPECT_TRUE((co_await chan.Release(env, msg.value())).ok());
    }
  });
  kernel_.Run();
  // The third acquire had to wait for the consumer's first Release.
  EXPECT_GE(third_acquire_at, 30.0);
}

TEST_F(ChanTest, RecvOnDeadPeerSurfacesError) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode blocked_recv = ErrorCode::kOk;
  ErrorCode later_recv = ErrorCode::kOk;
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);  // blocks: nothing was ever sent
    blocked_recv = msg.code();
    auto again = co_await chan.Recv(env);  // fails immediately once broken
    later_recv = again.code();
  });
  os::Process& killer_proc = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer_proc, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(25));
    dipc_.KillProcess(prod);  // producer crashes with the consumer parked
  });
  kernel_.Run();
  EXPECT_EQ(blocked_recv, ErrorCode::kCalleeFailed);
  EXPECT_EQ(later_recv, ErrorCode::kCalleeFailed);
  EXPECT_EQ(chan.broken(), ErrorCode::kCalleeFailed);
}

TEST_F(ChanTest, PeerDeathRevokesInFlightCapabilities) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode touch_after_death = ErrorCode::kOk;
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);
    EXPECT_TRUE(msg.ok());
    co_await env.kernel->Sleep(env, Duration::Micros(50));  // killer runs here
    auto s = co_await env.kernel->TouchUser(env, msg.value().va, 16, hw::AccessType::kRead);
    touch_after_death = s.code();
    // Releasing a message whose peer died must surface the crash, not a
    // caller error (the teardown already revoked the capability).
    auto rel = co_await chan.Release(env, msg.value());
    EXPECT_EQ(rel.code(), ErrorCode::kCalleeFailed);
  });
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto buf = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    EXPECT_TRUE((co_await chan.Send(env, buf.value(), 16)).ok());
  });
  os::Process& killer_proc = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer_proc, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(25));
    dipc_.KillProcess(prod);
  });
  kernel_.Run();
  // The crash unwound every outstanding grant, including the receiver's.
  EXPECT_EQ(touch_after_death, ErrorCode::kFault);
}

// --- Peer death swept across every suspension window ---
//
// The sim is deterministic, so sweeping the kill time at finer granularity
// than any single Spend lands the death inside every suspension point of the
// send/recv paths (AcquireBuf's, Send's and Recv's Spends, the CapStore, the
// descriptor push). Whatever window is hit, two invariants must hold: an
// operation never reports success while handing out a dead or unrecorded
// grant, and after the dust settles every async capability ever minted has
// been revoked (epoch >= 1 in the revocation table — only the channel mints
// async caps here, so an epoch still at 0 is a leaked grant).

TEST_F(ChanTest, SenderWindowsSweptByPeerDeathLeakNoGrant) {
  for (int step = 1; step <= 80; ++step) {
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& prod = dipc.CreateDipcProcess("producer");
    os::Process& cons = dipc.CreateDipcProcess("consumer");
    auto ch = Channel::Create(dipc, prod, cons, {.slots = 2, .buf_bytes = 4096});
    ASSERT_TRUE(ch.ok());
    Channel& chan = *ch.value();
    kernel.Spawn(
        prod, "producer",
        [&](os::Env env) -> sim::Task<void> {
          hw::VirtAddr last_va = 0;
          while (true) {
            auto buf = co_await chan.AcquireBuf(env);
            if (!buf.ok()) {
              EXPECT_EQ(buf.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              break;
            }
            last_va = buf.value().va;
            auto sent = co_await chan.Send(env, buf.value(), 64);
            if (!sent.ok()) {
              EXPECT_EQ(sent.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              break;
            }
          }
          if (last_va != 0) {
            // Whether the death landed before or after the last Send, the
            // sender must have lost access; a surviving write grant is the
            // exact leak the broken_ re-checks exist to prevent.
            auto touch =
                co_await env.kernel->TouchUser(env, last_va, 16, hw::AccessType::kWrite);
            EXPECT_EQ(touch.code(), ErrorCode::kFault) << "kill step " << step;
          }
        },
        /*pin_cpu=*/0);
    kernel.Spawn(
        cons, "consumer",
        [&](os::Env env) -> sim::Task<void> {
          while (true) {
            auto msg = co_await chan.Recv(env);
            if (!msg.ok()) {
              co_return;  // this side is the one being killed
            }
            (void)co_await chan.Release(env, msg.value());
          }
        },
        /*pin_cpu=*/1);
    os::Process& killer = dipc.CreateDipcProcess("killer");
    kernel.Spawn(
        killer, "killer",
        [&](os::Env env) -> sim::Task<void> {
          co_await env.kernel->Sleep(env, Duration::Nanos(step * 37.0));
          dipc.KillProcess(cons);
        },
        /*pin_cpu=*/2);
    kernel.Run();
    codoms::RevocationTable& rt = codoms.revocations();
    for (uint64_t id = 0; id < rt.size(); ++id) {
      EXPECT_GE(rt.Epoch(id), 1u) << "unrevoked capability " << id << ", kill step " << step;
    }
  }
}

TEST_F(ChanTest, ReceiverWindowsSweptByPeerDeathLeakNoGrant) {
  for (int step = 1; step <= 80; ++step) {
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& prod = dipc.CreateDipcProcess("producer");
    os::Process& cons = dipc.CreateDipcProcess("consumer");
    auto ch = Channel::Create(dipc, prod, cons, {.slots = 2, .buf_bytes = 4096});
    ASSERT_TRUE(ch.ok());
    Channel& chan = *ch.value();
    kernel.Spawn(
        prod, "producer",
        [&](os::Env env) -> sim::Task<void> {
          while (true) {  // this side is the one being killed
            auto buf = co_await chan.AcquireBuf(env);
            if (!buf.ok()) {
              co_return;
            }
            if (!(co_await chan.Send(env, buf.value(), 64)).ok()) {
              co_return;
            }
          }
        },
        /*pin_cpu=*/0);
    kernel.Spawn(
        cons, "consumer",
        [&](os::Env env) -> sim::Task<void> {
          while (true) {
            auto msg = co_await chan.Recv(env);
            if (!msg.ok()) {
              EXPECT_EQ(msg.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              co_return;
            }
            // Tasks resume by symmetric transfer, so no death can interleave
            // between Recv's internal broken_ check and this statement: an
            // ok Recv on an already-broken channel means Recv handed out a
            // grant that teardown had revoked.
            EXPECT_EQ(chan.broken(), ErrorCode::kOk) << "kill step " << step;
            auto r = co_await env.kernel->TouchUser(env, msg.value().va, 16,
                                                    hw::AccessType::kRead);
            if (chan.broken() == ErrorCode::kOk) {
              EXPECT_EQ(r.code(), ErrorCode::kOk) << "kill step " << step;
            }
            // else: the peer died inside the touch itself; the in-flight
            // grant was legitimately revoked and a fault is correct.
            auto rel = co_await chan.Release(env, msg.value());
            if (!rel.ok()) {
              EXPECT_EQ(rel.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              co_return;
            }
          }
        },
        /*pin_cpu=*/1);
    os::Process& killer = dipc.CreateDipcProcess("killer");
    kernel.Spawn(
        killer, "killer",
        [&](os::Env env) -> sim::Task<void> {
          co_await env.kernel->Sleep(env, Duration::Nanos(step * 37.0));
          dipc.KillProcess(prod);
        },
        /*pin_cpu=*/2);
    kernel.Run();
    codoms::RevocationTable& rt = codoms.revocations();
    for (uint64_t id = 0; id < rt.size(); ++id) {
      EXPECT_GE(rt.Epoch(id), 1u) << "unrevoked capability " << id << ", kill step " << step;
    }
  }
}

// --- Ring read-end close (EPIPE) ---

TEST_F(ChanTest, RingWriteAndReadAfterReadEndCloseFail) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  Ring ring(kernel_, proc, 1024, proc.default_domain());
  hw::VirtAddr buf = MapBuf(proc, hw::kPageSize);
  kernel_.Spawn(proc, "t", [&](os::Env env) -> sim::Task<void> {
    ring.CloseReadEnd();
    auto w = co_await ring.Write(env, buf, 64);
    EXPECT_EQ(w.code(), ErrorCode::kBrokenChannel);  // EPIPE even with space
    auto r = co_await ring.Read(env, buf, 64);
    EXPECT_EQ(r.code(), ErrorCode::kBrokenChannel);
  });
  kernel_.Run();
}

TEST_F(ChanTest, RingReaderBlockedOnEmptyRingFailsWhenReadEndCloses) {
  // Mirror of the blocked-writer fix: a reader parked on an empty ring must
  // be woken by CloseReadEnd — writes fail from then on, so nothing would
  // ever refill the ring for it.
  os::Process& proc = dipc_.CreateDipcProcess("p");
  Ring ring(kernel_, proc, 1024, proc.default_domain());
  hw::VirtAddr dst = MapBuf(proc, hw::kPageSize);
  ErrorCode read_code = ErrorCode::kOk;
  double read_done_at = 0;
  kernel_.Spawn(proc, "reader", [&](os::Env env) -> sim::Task<void> {
    auto n = co_await ring.Read(env, dst, 64);  // empty: parks
    read_code = n.code();
    read_done_at = env.kernel->now().micros();
  });
  kernel_.Spawn(proc, "closer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(25));
    ring.CloseReadEnd();
  });
  kernel_.Run();
  EXPECT_EQ(read_code, ErrorCode::kBrokenChannel);
  EXPECT_GE(read_done_at, 25.0);
}

TEST_F(ChanTest, RingWriterBlockedOnFullRingFailsWhenReaderDies) {
  // Regression: Write's full-ring predicate only checked fill_ == capacity_,
  // so a writer parked on a full ring whose reader died parked forever —
  // nobody was left to drain the ring and nothing ever woke the writer.
  os::Process& writer_proc = dipc_.CreateDipcProcess("writer");
  os::Process& reader_proc = dipc_.CreateDipcProcess("reader");
  auto ring = std::make_shared<Ring>(kernel_, writer_proc, 1024,
                                     writer_proc.default_domain());
  Ring::BindDeathHooks(dipc_, ring, writer_proc, reader_proc);
  hw::VirtAddr src = MapBuf(writer_proc, hw::kPageSize);
  ErrorCode write_code = ErrorCode::kOk;
  double write_done_at = 0;
  kernel_.Spawn(writer_proc, "writer", [&](os::Env env) -> sim::Task<void> {
    auto n = co_await ring->Write(env, src, 2048);  // twice the capacity: parks
    write_code = n.code();
    write_done_at = env.kernel->now().micros();
  });
  os::Process& killer_proc = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer_proc, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(25));
    dipc_.KillProcess(reader_proc);  // reader dies with the writer parked
  });
  kernel_.Run();
  EXPECT_EQ(write_code, ErrorCode::kBrokenChannel);
  EXPECT_GE(write_done_at, 25.0);  // the death hook, not a timeout, woke it
  EXPECT_TRUE(ring->read_closed());
}

// --- Batched queue operations ---

TEST_F(ChanTest, MpmcPushNPopNMoveValuesInOrder) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 4, proc.default_domain());
  std::vector<uint64_t> popped;
  kernel_.Spawn(
      proc, "producer",
      [&](os::Env env) -> sim::Task<void> {
        std::vector<uint64_t> vals(10);
        for (uint64_t v = 0; v < 10; ++v) {
          vals[v] = v;
        }
        // The batch exceeds the capacity: PushN must block mid-batch and
        // still deliver everything in order.
        EXPECT_TRUE((co_await q.PushN(env, std::span(vals))).ok());
        q.Close();
      },
      /*pin_cpu=*/0);
  kernel_.Spawn(
      proc, "consumer",
      [&](os::Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Micros(10));  // force blocking
        while (true) {
          uint64_t out[3];
          auto n = co_await q.PopN(env, std::span(out));
          if (!n.ok()) {
            co_return;
          }
          for (uint64_t i = 0; i < n.value(); ++i) {
            popped.push_back(out[i]);
          }
        }
      },
      /*pin_cpu=*/1);
  kernel_.Run();
  ASSERT_EQ(popped.size(), 10u);
  for (uint64_t v = 0; v < 10; ++v) {
    EXPECT_EQ(popped[v], v);
  }
}

TEST_F(ChanTest, BatchedPushWakeChainsAcrossParkedConsumers) {
  // A batched push issues at most one futex wake; parked consumers beyond
  // the first must be woken by the wake *chain* (a consumer that pops while
  // a backlog remains passes the wake on). Without chaining, consumer-b
  // would park forever and the queue would end the run non-empty.
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 8, proc.default_domain());
  std::vector<uint64_t> got_a, got_b;
  auto consumer = [&q](std::vector<uint64_t>& out) {
    return [&q, &out](os::Env env) -> sim::Task<void> {
      auto v = co_await q.Pop(env);
      if (v.ok()) {
        out.push_back(v.value());
      }
    };
  };
  kernel_.Spawn(proc, "consumer-a", consumer(got_a), /*pin_cpu=*/1);
  kernel_.Spawn(proc, "consumer-b", consumer(got_b), /*pin_cpu=*/2);
  kernel_.Spawn(
      proc, "producer",
      [&](os::Env env) -> sim::Task<void> {
        co_await env.kernel->Sleep(env, Duration::Micros(10));  // park both
        uint64_t vals[2] = {7, 9};
        EXPECT_TRUE((co_await q.PushN(env, std::span(vals))).ok());
      },
      /*pin_cpu=*/0);
  kernel_.Run();
  EXPECT_EQ(got_a.size(), 1u) << "consumer-a starved";
  EXPECT_EQ(got_b.size(), 1u) << "consumer-b never chained awake";
  EXPECT_EQ(q.size(), 0u);
}

TEST_F(ChanTest, UncontendedOpsIssueNoFutexWakes) {
  // Wake suppression: with nobody parked, Push/Pop must never pay the
  // FUTEX_WAKE syscall (the live waiter counters read zero).
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 8, proc.default_domain());
  kernel_.Spawn(proc, "t", [&](os::Env env) -> sim::Task<void> {
    for (uint64_t v = 0; v < 4; ++v) {
      EXPECT_TRUE((co_await q.Push(env, v)).ok());
    }
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE((co_await q.Pop(env)).ok());
    }
  });
  kernel_.Run();
  EXPECT_EQ(q.futex_wakes(), 0u);
  os::TimeBreakdown b = kernel_.accounting().Summed();
  EXPECT_EQ(b[os::TimeCat::kSyscallCrossing], Duration::Zero());
}

// --- Batched channel operations ---

TEST_F(ChanTest, BatchRoundTripDeliversAllPayloadsZeroCopy) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 8, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  constexpr int kBatch = 4;
  std::vector<hw::VirtAddr> sent_vas;
  std::vector<std::string> received;
  std::vector<hw::VirtAddr> recv_vas;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto bufs = co_await chan.AcquireBufBatch(env, kBatch);
    DIPC_CHECK(bufs.ok());
    EXPECT_EQ(bufs.value().size(), static_cast<size_t>(kBatch));
    std::vector<SendItem> items;
    for (int i = 0; i < kBatch; ++i) {
      const SendBuf& b = bufs.value()[i];
      chan.BindSendCap(*env.self, b);
      std::string payload = "batch message " + std::to_string(i);
      EXPECT_TRUE(
          env.kernel->UserWrite(*env.self, b.va, std::as_bytes(std::span(payload))).ok());
      sent_vas.push_back(b.va);
      items.push_back(SendItem{b, payload.size()});
    }
    EXPECT_TRUE((co_await chan.SendBatch(env, items)).ok());
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(20));  // let the batch land
    auto msgs = co_await chan.RecvBatch(env, kBatch);
    DIPC_CHECK(msgs.ok());
    EXPECT_EQ(msgs.value().size(), static_cast<size_t>(kBatch));
    for (const Msg& m : msgs.value()) {
      chan.BindRecvCap(*env.self, m);
      std::vector<char> buf(m.len);
      EXPECT_TRUE(
          env.kernel->UserRead(*env.self, m.va, std::as_writable_bytes(std::span(buf))).ok());
      received.emplace_back(buf.begin(), buf.end());
      recv_vas.push_back(m.va);
    }
    EXPECT_TRUE((co_await chan.ReleaseBatch(env, msgs.value())).ok());
  });
  kernel_.Run();
  ASSERT_EQ(received.size(), static_cast<size_t>(kBatch));
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_EQ(received[i], "batch message " + std::to_string(i));  // FIFO order
    EXPECT_EQ(recv_vas[i], sent_vas[i]);  // zero copy: same buffer both sides
  }
  EXPECT_EQ(chan.sends(), static_cast<uint64_t>(kBatch));
  EXPECT_EQ(chan.recvs(), static_cast<uint64_t>(kBatch));
  EXPECT_EQ(chan.LiveGrantCount(), 0u);  // everything released and revoked
}

TEST_F(ChanTest, SendBatchRejectsDuplicateBuffersAndBadLengths) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 4, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto bufs = co_await chan.AcquireBufBatch(env, 2);
    DIPC_CHECK(bufs.ok());
    SendItem dup[2] = {SendItem{bufs.value()[0], 16}, SendItem{bufs.value()[0], 16}};
    EXPECT_EQ((co_await chan.SendBatch(env, dup)).code(), ErrorCode::kInvalidArgument);
    SendItem zero[1] = {SendItem{bufs.value()[0], 0}};
    EXPECT_EQ((co_await chan.SendBatch(env, zero)).code(), ErrorCode::kInvalidArgument);
    // The rejected batches must leave ownership untouched: a correct batch
    // over the same buffers still works.
    SendItem good[2] = {SendItem{bufs.value()[0], 16}, SendItem{bufs.value()[1], 16}};
    EXPECT_TRUE((co_await chan.SendBatch(env, good)).ok());
  });
  kernel_.Run();
  EXPECT_EQ(chan.sends(), 2u);
}

TEST_F(ChanTest, SteadyStateSendPathMintsNothingAndChargesNoMintCost) {
  // The epoch-cached hot path: after one full slot rotation every per-slot
  // template is minted; from then on grants are counter re-snapshots. To
  // prove the steady state charges zero mint cost (not merely "few mints"),
  // poison the mint cost to 100 us after warmup — any CapFromApl in the
  // measured window would blow the elapsed time by orders of magnitude.
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  constexpr uint32_t kSlots = 2;
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = kSlots, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  kernel_.Spawn(prod, "worker", [&](os::Env env) -> sim::Task<void> {
    auto cycle = [&](int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        auto buf = co_await chan.AcquireBuf(env);
        DIPC_CHECK(buf.ok());
        DIPC_CHECK((co_await chan.Send(env, buf.value(), 64)).ok());
        auto msg = co_await chan.Recv(env);
        DIPC_CHECK(msg.ok());
        DIPC_CHECK((co_await chan.Release(env, msg.value())).ok());
      }
    };
    co_await cycle(2 * kSlots);  // warm every slot's write + read template
    EXPECT_EQ(chan.cold_mints(), 2u * kSlots);  // one wcap + one rcap per slot
    const uint64_t mints_before = codoms_.mint_count();
    machine_.costs().cap_setup = Duration::Micros(100);  // poison the mint
    sim::Time t0 = env.kernel->now();
    co_await cycle(20);
    double elapsed_us = (env.kernel->now() - t0).micros();
    EXPECT_EQ(codoms_.mint_count(), mints_before) << "steady state minted a capability";
    EXPECT_EQ(chan.cold_mints(), 2u * kSlots);
    // 20 messages of pure fast path: far below a single poisoned mint.
    EXPECT_LT(elapsed_us, 100.0);
  });
  kernel_.Run();
}

// (The batch>=2x per-message bound and the fan-out cost bound live in
// tests/bench_bounds_test.cc.)

TEST_F(ChanTest, FuzzedGrantRevokeRebindInterleavingsNeverResurrectStaleEpochs) {
  // Epoch-rebind property: after ANY interleaving of grant (mint/rebind),
  // revoke, and rebind, a capability snapshot whose epoch predates a
  // revocation of its counter must fault, and only the creator domain may
  // rebind. The interleavings are fuzzed with a seeded RNG rather than
  // hand-picked; the seed is in the trace on failure.
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    hw::Machine machine(1);
    codoms::Codoms cd(machine);
    hw::PageTable& pt = machine.CreatePageTable();
    hw::DomainTag runtime = cd.apl_table().AllocateTag();
    hw::DomainTag data = cd.apl_table().AllocateTag();
    hw::DomainTag holder = cd.apl_table().AllocateTag();  // no grant over data
    cd.apl_table().Grant(runtime, data, codoms::Perm::kWrite);
    constexpr hw::VirtAddr kBase = 0x40000;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(pt.MapPage(kBase + i * hw::kPageSize, machine.mem().AllocFrame(),
                             hw::PageFlags{.writable = true}, data)
                      .ok());
    }
    codoms::ThreadCapContext rt_ctx(1);
    rt_ctx.current_domain = runtime;
    codoms::ThreadCapContext outsider_ctx(2);
    outsider_ctx.current_domain = holder;
    codoms::ThreadCapContext holder_ctx(3);
    holder_ctx.current_domain = holder;
    sim::Rng rng(seed);
    sim::Duration cost;
    std::optional<codoms::Capability> tmpl;  // the rebindable cached grant
    std::vector<codoms::Capability> held;    // every snapshot ever handed out
    auto check_all_held = [&](int step) {
      for (const codoms::Capability& cap : held) {
        const bool live =
            cd.revocations().Epoch(cap.revocation_id) == cap.revocation_epoch;
        // The architectural validity check and the full data-access path
        // (capability register fallback) must agree with the counter.
        EXPECT_EQ(cap.ValidFor(holder_ctx.thread_id, 0, cd.revocations()), live)
            << "step " << step;
        holder_ctx.regs.Set(0, cap);
        auto access = cd.CheckDataAccess(0, pt, holder_ctx, kBase + 64, 128,
                                         hw::AccessType::kRead);
        EXPECT_EQ(access.ok(), live) << "step " << step;
        if (!live) {
          EXPECT_EQ(access.code(), ErrorCode::kFault) << "step " << step;
        }
        holder_ctx.regs.Clear(0);
      }
    };
    for (int step = 0; step < 160; ++step) {
      switch (rng.UniformInt(0, 4)) {
        case 0: {  // grant: cold mint or warm rebind of the cached template
          if (!tmpl.has_value()) {
            auto minted = cd.CapFromApl(0, pt, rt_ctx, kBase, 4 * hw::kPageSize,
                                        codoms::Perm::kRead, codoms::CapType::kAsync, &cost);
            ASSERT_TRUE(minted.ok());
            tmpl = minted.value();
          } else {
            auto rebound = cd.CapRebind(*tmpl, rt_ctx, &cost);
            ASSERT_TRUE(rebound.ok());
            tmpl = rebound.value();
          }
          held.push_back(*tmpl);
          break;
        }
        case 1:  // revoke: every snapshot at or below this epoch dies
          if (tmpl.has_value()) {
            ASSERT_TRUE(cd.CapRevoke(*tmpl).ok());
          }
          break;
        case 2:  // rebind from a non-creator domain must be denied
          if (tmpl.has_value()) {
            EXPECT_EQ(cd.CapRebind(*tmpl, outsider_ctx, &cost).code(),
                      ErrorCode::kPermissionDenied)
                << "step " << step;
          }
          break;
        case 3:  // a revoked-then-rebound counter revives ONLY new snapshots
          if (tmpl.has_value()) {
            ASSERT_TRUE(cd.CapRevoke(*tmpl).ok());
            auto rebound = cd.CapRebind(*tmpl, rt_ctx, &cost);
            ASSERT_TRUE(rebound.ok());
            EXPECT_NE(rebound.value().revocation_epoch, tmpl->revocation_epoch);
            tmpl = rebound.value();
            held.push_back(*tmpl);
          }
          break;
        default:
          check_all_held(step);
          break;
      }
    }
    check_all_held(-1);
    // Terminal revocation: nothing survives.
    if (tmpl.has_value()) {
      ASSERT_TRUE(cd.CapRevoke(*tmpl).ok());
    }
    for (const codoms::Capability& cap : held) {
      EXPECT_FALSE(cap.ValidFor(holder_ctx.thread_id, 0, cd.revocations()));
      holder_ctx.regs.Set(0, cap);
      EXPECT_EQ(
          cd.CheckDataAccess(0, pt, holder_ctx, kBase, 64, hw::AccessType::kRead).code(),
          ErrorCode::kFault);
      holder_ctx.regs.Clear(0);
    }
    EXPECT_EQ(cd.revocations().live_count(), 0u);
  }
}

// --- Batched paths swept by peer death (no grant may survive) ---

TEST_F(ChanTest, BatchedSenderWindowsSweptByPeerDeathLeakNoGrant) {
  for (int step = 1; step <= 80; ++step) {
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& prod = dipc.CreateDipcProcess("producer");
    os::Process& cons = dipc.CreateDipcProcess("consumer");
    auto ch = Channel::Create(dipc, prod, cons, {.slots = 4, .buf_bytes = 4096});
    ASSERT_TRUE(ch.ok());
    std::shared_ptr<Channel> chan = ch.value();
    kernel.Spawn(
        prod, "producer",
        [&, chan](os::Env env) -> sim::Task<void> {
          hw::VirtAddr last_va = 0;
          while (true) {
            auto bufs = co_await chan->AcquireBufBatch(env, 3);
            if (!bufs.ok()) {
              EXPECT_EQ(bufs.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              break;
            }
            std::vector<SendItem> items;
            for (const SendBuf& b : bufs.value()) {
              chan->BindSendCap(*env.self, b);
              last_va = b.va;
              items.push_back(SendItem{b, 64});
            }
            auto sent = co_await chan->SendBatch(env, items);
            if (!sent.ok()) {
              EXPECT_EQ(sent.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              break;
            }
          }
          if (last_va != 0) {
            auto touch =
                co_await env.kernel->TouchUser(env, last_va, 16, hw::AccessType::kWrite);
            EXPECT_EQ(touch.code(), ErrorCode::kFault) << "kill step " << step;
          }
        },
        /*pin_cpu=*/0);
    kernel.Spawn(
        cons, "consumer",
        [&, chan](os::Env env) -> sim::Task<void> {
          while (true) {  // this side is the one being killed
            auto msgs = co_await chan->RecvBatch(env, 3);
            if (!msgs.ok()) {
              co_return;
            }
            (void)co_await chan->ReleaseBatch(env, msgs.value());
          }
        },
        /*pin_cpu=*/1);
    os::Process& killer = dipc.CreateDipcProcess("killer");
    kernel.Spawn(
        killer, "killer",
        [&](os::Env env) -> sim::Task<void> {
          co_await env.kernel->Sleep(env, Duration::Nanos(step * 37.0));
          dipc.KillProcess(cons);
        },
        /*pin_cpu=*/2);
    kernel.Run();
    // Epoch-cached world: "revoked" means the counter moved past every
    // recorded snapshot, so check liveness directly, not just counter > 0.
    EXPECT_EQ(chan->LiveGrantCount(), 0u) << "kill step " << step;
    codoms::RevocationTable& rt = codoms.revocations();
    for (uint64_t id = 0; id < rt.size(); ++id) {
      EXPECT_GE(rt.Epoch(id), 1u) << "unrevoked capability " << id << ", kill step " << step;
    }
  }
}

TEST_F(ChanTest, BatchedReceiverWindowsSweptByPeerDeathLeakNoGrant) {
  for (int step = 1; step <= 80; ++step) {
    hw::Machine machine(4);
    codoms::Codoms codoms(machine);
    os::Kernel kernel(machine, codoms);
    core::Dipc dipc(kernel);
    os::Process& prod = dipc.CreateDipcProcess("producer");
    os::Process& cons = dipc.CreateDipcProcess("consumer");
    auto ch = Channel::Create(dipc, prod, cons, {.slots = 4, .buf_bytes = 4096});
    ASSERT_TRUE(ch.ok());
    std::shared_ptr<Channel> chan = ch.value();
    kernel.Spawn(
        prod, "producer",
        [&, chan](os::Env env) -> sim::Task<void> {
          while (true) {  // this side is the one being killed
            auto bufs = co_await chan->AcquireBufBatch(env, 3);
            if (!bufs.ok()) {
              co_return;
            }
            std::vector<SendItem> items;
            for (const SendBuf& b : bufs.value()) {
              chan->BindSendCap(*env.self, b);
              items.push_back(SendItem{b, 64});
            }
            if (!(co_await chan->SendBatch(env, items)).ok()) {
              co_return;
            }
          }
        },
        /*pin_cpu=*/0);
    kernel.Spawn(
        cons, "consumer",
        [&, chan](os::Env env) -> sim::Task<void> {
          while (true) {
            auto msgs = co_await chan->RecvBatch(env, 3);
            if (!msgs.ok()) {
              EXPECT_EQ(msgs.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              co_return;
            }
            EXPECT_EQ(chan->broken(), ErrorCode::kOk) << "kill step " << step;
            for (const Msg& m : msgs.value()) {
              chan->BindRecvCap(*env.self, m);
              auto r = co_await env.kernel->TouchUser(env, m.va, 16, hw::AccessType::kRead);
              if (chan->broken() == ErrorCode::kOk) {
                EXPECT_EQ(r.code(), ErrorCode::kOk) << "kill step " << step;
              }
              // else: the peer died inside the touch; the in-flight grant
              // was legitimately revoked and a fault is correct.
            }
            auto rel = co_await chan->ReleaseBatch(env, msgs.value());
            if (!rel.ok()) {
              EXPECT_EQ(rel.code(), ErrorCode::kCalleeFailed) << "kill step " << step;
              co_return;
            }
          }
        },
        /*pin_cpu=*/1);
    os::Process& killer = dipc.CreateDipcProcess("killer");
    kernel.Spawn(
        killer, "killer",
        [&](os::Env env) -> sim::Task<void> {
          co_await env.kernel->Sleep(env, Duration::Nanos(step * 37.0));
          dipc.KillProcess(prod);
        },
        /*pin_cpu=*/2);
    kernel.Run();
    EXPECT_EQ(chan->LiveGrantCount(), 0u) << "kill step " << step;
    codoms::RevocationTable& rt = codoms.revocations();
    for (uint64_t id = 0; id < rt.size(); ++id) {
      EXPECT_GE(rt.Epoch(id), 1u) << "unrevoked capability " << id << ", kill step " << step;
    }
  }
}

TEST_F(ChanTest, EpochCachedCapsFromDeadEpochFaultOnAccess) {
  // Warm the epoch caches with a full rotation, then kill the producer while
  // the consumer holds a *rebound* (not freshly minted) capability: the
  // teardown's counter bump must invalidate the cached epoch, so access
  // faults — the §4.2 immediate-revocation guarantee survives the caching.
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  ASSERT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  ErrorCode touch_after_death = ErrorCode::kOk;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {  // two full rotations: all templates cached
      auto buf = co_await chan.AcquireBuf(env);
      if (!buf.ok()) {
        co_return;
      }
      if (!(co_await chan.Send(env, buf.value(), 64)).ok()) {
        co_return;
      }
    }
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      auto msg = co_await chan.Recv(env);
      if (!msg.ok()) {
        co_return;
      }
      if (i < 2) {
        EXPECT_TRUE((co_await chan.Release(env, msg.value())).ok());
        continue;
      }
      // Hold the third message (its read cap was epoch-rebound, the slot
      // already rotated once) across the producer's death.
      co_await env.kernel->Sleep(env, Duration::Micros(50));
      auto s = co_await env.kernel->TouchUser(env, msg.value().va, 16, hw::AccessType::kRead);
      touch_after_death = s.code();
    }
  });
  os::Process& killer_proc = dipc_.CreateDipcProcess("killer");
  kernel_.Spawn(killer_proc, "killer", [&](os::Env env) -> sim::Task<void> {
    co_await env.kernel->Sleep(env, Duration::Micros(25));
    dipc_.KillProcess(prod);
  });
  kernel_.Run();
  EXPECT_EQ(touch_after_death, ErrorCode::kFault);
  EXPECT_EQ(chan.LiveGrantCount(), 0u);
}

TEST_F(ChanTest, EndpointsExchangeThroughEntryRequest) {
  // The consumer publishes an "open" entry; the producer entry_requests it
  // and receives a SenderEndpoint fd through the call — the dIPC-native way
  // to hand out channel ends (§5.2.2 delegation).
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  std::shared_ptr<Channel> chan;
  core::EntryDesc entry;
  entry.name = "chan.open";
  entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
  entry.policy = core::IsolationPolicy::Low();
  entry.fn = [&](os::Env env, core::CallArgs) -> sim::Task<uint64_t> {
    auto ch = Channel::Create(dipc_, prod, cons, {.slots = 4, .buf_bytes = 4096});
    DIPC_CHECK(ch.ok());
    chan = ch.value();
    os::Fd fd = prod.fds().Insert(std::make_shared<SenderEndpoint>(chan));
    (void)env;
    co_return static_cast<uint64_t>(fd);
  };
  auto handle = dipc_.EntryRegister(cons, *dipc_.DomDefault(cons), {entry});
  ASSERT_TRUE(handle.ok());
  auto req = dipc_.EntryRequest(prod, *handle.value(),
                                {{entry.signature, core::IsolationPolicy::Low()}});
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(dipc_.GrantCreate(*dipc_.DomDefault(prod), *req.value().proxy_domain).ok());
  core::ProxyRef proxy = req.value().proxies[0];

  std::string received;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    uint64_t fd = co_await proxy.Call(env, core::CallArgs{});
    EXPECT_EQ(env.self->TakeError(), ErrorCode::kOk);
    auto ep = prod.fds().GetAs<SenderEndpoint>(static_cast<os::Fd>(fd));
    EXPECT_NE(ep, nullptr);
    auto buf = co_await ep->AcquireBuf(env);
    EXPECT_TRUE(buf.ok());
    const std::string msg = "hello over entry_request";
    EXPECT_TRUE(
        env.kernel->UserWrite(*env.self, buf.value().va, std::as_bytes(std::span(msg))).ok());
    EXPECT_TRUE((co_await ep->Send(env, buf.value(), msg.size())).ok());
    ep->Close();
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    while (chan == nullptr) {  // wait for the producer's open call
      co_await env.kernel->Sleep(env, Duration::Micros(5));
    }
    ReceiverEndpoint ep(chan);
    auto msg = co_await ep.Recv(env);
    EXPECT_TRUE(msg.ok());
    std::vector<char> buf(msg.value().len);
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, msg.value().va, std::as_writable_bytes(std::span(buf)))
            .ok());
    received.assign(buf.begin(), buf.end());
    EXPECT_TRUE((co_await ep.Release(env, msg.value())).ok());
  });
  kernel_.Run();
  EXPECT_EQ(received, "hello over entry_request");
}

// --- Abandon (give back an acquired-but-unsent buffer) ---

TEST_F(ChanTest, AbandonReturnsSlotToPoolAndRevokesGrant) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 2, .buf_bytes = 4096});
  EXPECT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto a = co_await chan.AcquireBuf(env);
    auto b = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(b.ok());
    EXPECT_EQ(chan.LiveGrantCount(), 2u);
    // Abandoning kills the write grant and recycles the slot: the next
    // acquire succeeds with zero receiver involvement. Without Abandon
    // this acquire would deadlock (both slots held, nothing in flight).
    EXPECT_TRUE((co_await chan.Abandon(env, a.value())).ok());
    EXPECT_EQ(chan.LiveGrantCount(), 1u);
    // Abandoning a buffer the caller no longer owns is a caller bug. (Like
    // Send, Abandon identifies the buffer by slot index — once the slot is
    // re-acquired, the stale SendBuf aliases the new grant again.)
    EXPECT_EQ((co_await chan.Abandon(env, a.value())).code(), ErrorCode::kInvalidArgument);
    auto c = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(c.ok());
    EXPECT_EQ(chan.LiveGrantCount(), 2u);
    std::vector<SendBuf> rest{b.value(), c.value()};
    EXPECT_TRUE((co_await chan.AbandonBatch(env, rest)).ok());
    EXPECT_EQ(chan.LiveGrantCount(), 0u);
  });
  kernel_.Run();
}

TEST_F(ChanTest, AbandonedBufferIsSendableAfterReacquire) {
  os::Process& prod = dipc_.CreateDipcProcess("producer");
  os::Process& cons = dipc_.CreateDipcProcess("consumer");
  auto ch = Channel::Create(dipc_, prod, cons, {.slots = 1, .buf_bytes = 4096});
  EXPECT_TRUE(ch.ok());
  Channel& chan = *ch.value();
  std::string received;
  kernel_.Spawn(prod, "producer", [&](os::Env env) -> sim::Task<void> {
    auto first = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(first.ok());
    EXPECT_TRUE((co_await chan.Abandon(env, first.value())).ok());
    // The recycled slot re-grants cleanly (epoch rebind) and the full
    // send/recv path still works on it.
    auto again = co_await chan.AcquireBuf(env);
    EXPECT_TRUE(again.ok());
    const std::string payload = "recycled slot";
    EXPECT_TRUE(
        env.kernel->UserWrite(*env.self, again.value().va, std::as_bytes(std::span(payload)))
            .ok());
    EXPECT_TRUE((co_await chan.Send(env, again.value(), payload.size())).ok());
  });
  kernel_.Spawn(cons, "consumer", [&](os::Env env) -> sim::Task<void> {
    auto msg = co_await chan.Recv(env);
    EXPECT_TRUE(msg.ok());
    std::vector<char> buf(msg.value().len);
    EXPECT_TRUE(
        env.kernel->UserRead(*env.self, msg.value().va, std::as_writable_bytes(std::span(buf)))
            .ok());
    received.assign(buf.begin(), buf.end());
    EXPECT_TRUE((co_await chan.Release(env, msg.value())).ok());
  });
  kernel_.Run();
  EXPECT_EQ(received, "recycled slot");
}

// --- Deadlines on the blocking primitives ---

TEST_F(ChanTest, RingWriteAndReadHonorDeadlines) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  Ring ring(kernel_, proc, 256, proc.default_domain());
  hw::VirtAddr src = MapBuf(proc, hw::kPageSize);
  hw::VirtAddr dst = MapBuf(proc, hw::kPageSize);
  kernel_.Spawn(proc, "solo", [&](os::Env env) -> sim::Task<void> {
    auto fill = co_await ring.Write(env, src, 256);  // fills exactly; no park
    EXPECT_TRUE(fill.ok());
    // Full ring + nobody draining: a bounded write must come back instead
    // of parking forever.
    auto blocked = co_await ring.Write(
        env, src, 64, os::Deadline::After(env.kernel->now(), Duration::Micros(5)));
    EXPECT_EQ(blocked.code(), ErrorCode::kTimedOut);
    auto drained = co_await ring.Read(env, dst, 256);
    EXPECT_TRUE(drained.ok());
    EXPECT_EQ(drained.value(), 256u);
    // Empty ring + nobody writing: same deal on the read side.
    auto empty = co_await ring.Read(
        env, dst, 64, os::Deadline::After(env.kernel->now(), Duration::Micros(5)));
    EXPECT_EQ(empty.code(), ErrorCode::kTimedOut);
  });
  kernel_.Run();
}

TEST_F(ChanTest, MpmcPushAndPopHonorDeadlines) {
  os::Process& proc = dipc_.CreateDipcProcess("p");
  MpmcQueue q(kernel_, proc, 1, proc.default_domain());
  kernel_.Spawn(proc, "solo", [&](os::Env env) -> sim::Task<void> {
    EXPECT_TRUE((co_await q.Push(env, 7)).ok());
    auto full = co_await q.Push(
        env, 8, os::Deadline::After(env.kernel->now(), Duration::Micros(5)));
    EXPECT_EQ(full.code(), ErrorCode::kTimedOut);
    auto v = co_await q.Pop(env);
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 7u);
    auto empty =
        co_await q.Pop(env, os::Deadline::After(env.kernel->now(), Duration::Micros(5)));
    EXPECT_EQ(empty.code(), ErrorCode::kTimedOut);
  });
  kernel_.Run();
  EXPECT_EQ(q.timeouts(), 2u);
}

}  // namespace
}  // namespace dipc::chan
