// Quickstart: two dIPC-enabled processes, one exported entry point, one
// cross-process call that runs in place on the caller's thread.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/proxy.h"
#include "hw/machine.h"
#include "os/kernel.h"

using namespace dipc;

int main() {
  // A 4-CPU machine with the CODOMs protection engine and the OS kernel.
  hw::Machine machine(4);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);

  // Two processes in the global virtual address space (§6.1.3).
  os::Process& web = dipc.CreateDipcProcess("web");
  os::Process& db = dipc.CreateDipcProcess("db");

  // The database exports one entry point: query(x) -> x*2 (Table 2,
  // entry_register).
  core::EntryDesc query;
  query.name = "query";
  query.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
  query.policy = core::IsolationPolicy::High();  // DB wants full isolation
  query.fn = [](os::Env env, core::CallArgs args) -> sim::Task<uint64_t> {
    std::printf("  [db]  query(%llu) executing in process '%s' on thread %llu\n",
                (unsigned long long)args.regs[0], env.self->process().name().c_str(),
                (unsigned long long)env.self->tid());
    co_await env.kernel->Spend(*env.self, sim::Duration::Micros(5), os::TimeCat::kUser);
    co_return args.regs[0] * 2;
  };
  auto handle = dipc.EntryRegister(db, *dipc.DomDefault(db), {query});

  // The web server imports it (entry_request checks the signature, P4) and
  // grants itself call permission on the generated proxy domain.
  auto req = dipc.EntryRequest(web, *handle.value(),
                               {{query.signature, core::IsolationPolicy::Low()}});
  auto grant = dipc.GrantCreate(*dipc.DomDefault(web), *req.value().proxy_domain);
  if (!grant.ok()) {
    std::printf("grant failed\n");
    return 1;
  }
  core::ProxyRef proxy = req.value().proxies[0];

  // A web thread calls across processes with a plain synchronous call.
  kernel.Spawn(web, "worker", [&, proxy](os::Env env) -> sim::Task<void> {
    std::printf("[web] calling db.query(21) from process '%s'...\n",
                env.self->process().name().c_str());
    sim::Time t0 = env.kernel->now();
    core::CallArgs args;
    args.regs[0] = 21;
    uint64_t result = co_await proxy.Call(env, args);
    double ns = (env.kernel->now() - t0).nanos();
    std::printf("[web] got %llu back; the whole call took %.0f ns of virtual time\n",
                (unsigned long long)result, ns);
    std::printf("[web] (first call pays the cold tracker upcall; calling again...)\n");
    t0 = env.kernel->now();
    (void)co_await proxy.Call(env, args);
    std::printf("[web] warm call: %.1f ns (paper: ~107 ns for the High policy)\n",
                (env.kernel->now() - t0).nanos() - 5000.0);
  });

  kernel.Run();
  std::printf("done at t=%.2f us of virtual time\n", kernel.now().micros());
  return 0;
}
