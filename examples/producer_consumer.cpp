// Producer/consumer over a zero-copy channel (src/chan/), using the batched
// hot path.
//
// Two dIPC-enabled processes in the global VAS. The consumer publishes a
// "stream.open" entry point; the producer resolves it through entry_request
// and receives a channel endpoint fd from the call (§5.2.2-style handle
// delegation, but through a dIPC entry instead of a UNIX socket). It then
// streams messages whose payloads never get copied: SendBatch revokes the
// producer's buffer capabilities and grants read-only ones to the consumer,
// publishing a whole batch of descriptors with one queue operation and at
// most one futex wake. In steady state the grants are epoch rebinds of
// capabilities minted once per buffer — no mints, no APL walks.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "chan/channel.h"
#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "hw/machine.h"
#include "os/kernel.h"

using namespace dipc;  // NOLINT: example brevity

int main() {
  hw::Machine machine(4);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);

  os::Process& producer = dipc.CreateDipcProcess("producer");
  os::Process& consumer = dipc.CreateDipcProcess("consumer");

  constexpr int kMessages = 1000;
  constexpr int kBatch = 8;
  constexpr uint64_t kPayload = 64 * 1024;

  // The consumer side of the contract: an entry that opens a channel toward
  // the caller and hands back the sender endpoint as an fd.
  std::shared_ptr<chan::Channel> channel;
  core::EntryDesc open_entry;
  open_entry.name = "stream.open";
  open_entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
  open_entry.policy = core::IsolationPolicy::Low();
  open_entry.fn = [&](os::Env, core::CallArgs) -> sim::Task<uint64_t> {
    auto ch = chan::Channel::Create(dipc, producer, consumer,
                                    {.slots = 2 * kBatch, .buf_bytes = kPayload});
    DIPC_CHECK(ch.ok());
    channel = ch.value();
    os::Fd fd = producer.fds().Insert(std::make_shared<chan::SenderEndpoint>(channel));
    co_return static_cast<uint64_t>(fd);
  };
  auto handle = dipc.EntryRegister(consumer, *dipc.DomDefault(consumer), {open_entry});
  DIPC_CHECK(handle.ok());
  auto req = dipc.EntryRequest(producer, *handle.value(),
                               {{open_entry.signature, core::IsolationPolicy::Low()}});
  DIPC_CHECK(req.ok());
  DIPC_CHECK(dipc.GrantCreate(*dipc.DomDefault(producer), *req.value().proxy_domain).ok());
  core::ProxyRef open_proxy = req.value().proxies[0];

  uint64_t consumed_bytes = 0;
  kernel.Spawn(
      consumer, "consumer",
      [&](os::Env env) -> sim::Task<void> {
        while (channel == nullptr) {
          co_await env.kernel->Sleep(env, sim::Duration::Micros(5));
        }
        chan::ReceiverEndpoint rx(channel);
        while (true) {
          // Drain a whole batch per queue operation; the per-message work
          // left is one register rebind + the payload read.
          auto msgs = co_await rx.RecvBatch(env, kBatch);
          if (!msgs.ok()) {
            std::printf("[consumer] stream ended: %s\n",
                        base::ErrorCodeName(msgs.code()).data());
            co_return;
          }
          for (const chan::Msg& msg : msgs.value()) {
            rx.BindRecvCap(*env.self, msg);
            // Consume in place through the read-only capability — the data
            // was never copied since the producer wrote it.
            auto s = co_await env.kernel->TouchUser(env, msg.va, msg.len,
                                                    hw::AccessType::kRead);
            DIPC_CHECK(s.ok());
            consumed_bytes += msg.len;
          }
          DIPC_CHECK((co_await rx.ReleaseBatch(env, msgs.value())).ok());
        }
      },
      /*pin_cpu=*/1);

  kernel.Spawn(
      producer, "producer",
      [&](os::Env env) -> sim::Task<void> {
        uint64_t fd = co_await open_proxy.Call(env, core::CallArgs{});
        DIPC_CHECK(env.self->TakeError() == base::ErrorCode::kOk);
        auto tx = producer.fds().GetAs<chan::SenderEndpoint>(static_cast<os::Fd>(fd));
        DIPC_CHECK(tx != nullptr);
        std::printf("[producer] got sender endpoint fd=%llu via entry_request\n",
                    static_cast<unsigned long long>(fd));
        sim::Time t0 = env.kernel->now();
        int sent = 0;
        while (sent < kMessages) {
          auto bufs = co_await tx->AcquireBufBatch(
              env, static_cast<uint32_t>(std::min(kBatch, kMessages - sent)));
          DIPC_CHECK(bufs.ok());
          std::vector<chan::SendItem> items;
          for (const chan::SendBuf& buf : bufs.value()) {
            tx->BindSendCap(*env.self, buf);
            auto s = co_await env.kernel->TouchUser(env, buf.va, kPayload,
                                                    hw::AccessType::kWrite);
            DIPC_CHECK(s.ok());
            items.push_back(chan::SendItem{buf, kPayload});
          }
          // One descriptor-queue push and at most one futex wake publish
          // the whole batch.
          DIPC_CHECK((co_await tx->SendBatch(env, items)).ok());
          sent += static_cast<int>(items.size());
        }
        double us = (env.kernel->now() - t0).micros();
        std::printf("[producer] streamed %d x %llu KiB in %.1f us (%.2f GB/s virtual)\n",
                    kMessages, static_cast<unsigned long long>(kPayload / 1024), us,
                    kMessages * (kPayload / 1024.0 / 1024.0 / 1024.0) / (us * 1e-6));
        tx->Close();
      },
      /*pin_cpu=*/0);

  kernel.Run();
  std::printf("[main] consumer read %llu bytes, channel moved %llu messages, 0 copies\n",
              static_cast<unsigned long long>(consumed_bytes),
              static_cast<unsigned long long>(channel->recvs()));
  return 0;
}
