// Device-driver isolation (§7.3): run a netpipe-style ping-pong over the
// Infiniband-like NIC with the user-level driver isolated six different
// ways, and compare the latency each mechanism costs.
//
// Build & run:  ./build/examples/driver_isolation
#include <cstdio>

#include <string>
#include "apps/netpipe/netpipe.h"

using namespace dipc::apps;

int main() {
  constexpr uint64_t kBytes = 64;
  std::printf("netpipe ping-pong, %llu-byte transfers, driver isolation variants:\n\n",
              (unsigned long long)kBytes);
  std::printf("%-24s %14s %12s\n", "isolation", "latency [us]", "overhead");
  double base = 0;
  for (DriverIsolation iso :
       {DriverIsolation::kInline, DriverIsolation::kDipcDomain, DriverIsolation::kDipcProcess,
        DriverIsolation::kKernel, DriverIsolation::kSemaphore, DriverIsolation::kPipe}) {
    NetpipeResult r = RunNetpipe({.isolation = iso, .transfer_bytes = kBytes});
    if (iso == DriverIsolation::kInline) {
      base = r.latency_us;
    }
    std::printf("%-24s %14.3f %11.1f%%\n", std::string(DriverIsolationName(iso)).c_str(),
                r.latency_us, 100.0 * (r.latency_us - base) / base);
  }
  std::printf("\nOnly dIPC sustains the NIC's low latency (paper: ~1%% overhead);\n");
  std::printf("the kernel-driver syscall path costs ~10%%, full IPC >100%%.\n");
  return 0;
}
