// Asymmetric isolation (§2.4, §3.3): an application hosting an untrusted
// plugin in a separate CODOMs domain of the *same* process. The app can read
// the plugin's memory directly (no isolation that way), the plugin cannot
// touch the app, and a plugin crash unwinds cleanly to the app with an
// errno-like flag instead of killing it.
//
// Build & run:  ./build/examples/plugin_sandbox
#include <cstdio>
#include <string>

#include "codoms/codoms.h"
#include "dipc/dipc.h"
#include "dipc/loader.h"
#include "hw/machine.h"
#include "os/kernel.h"

using namespace dipc;

int main() {
  hw::Machine machine(2);
  codoms::Codoms codoms(machine);
  os::Kernel kernel(machine, codoms);
  core::Dipc dipc(kernel);
  core::Loader loader(dipc);

  os::Process& app = dipc.CreateDipcProcess("app");

  kernel.Spawn(app, "main", [&](os::Env env) -> sim::Task<void> {
    // The annotation DSL stands in for the paper's compiler pass (§5.3.1):
    // one "plugin" domain; the app may read it, not vice versa.
    core::ModuleSpec spec;
    spec.name = "app-with-plugin";
    spec.domains.push_back(core::DomSpec{"plugin"});
    spec.perms.push_back(core::PermSpec{"", "plugin", core::DomPerm::kRead});
    auto mod = loader.Load(env, std::move(spec));
    auto plugin_dom = mod.value().domain("plugin");

    // Plugin-private memory.
    auto pbuf = dipc.DomMmap(app, *plugin_dom, 4096, hw::PageFlags{.writable = true});
    std::printf("[app] plugin heap at 0x%llx\n", (unsigned long long)pbuf.value());

    // Asymmetry in action: the app reads plugin memory directly...
    auto r = co_await env.kernel->TouchUser(env, pbuf.value(), 64, hw::AccessType::kRead);
    std::printf("[app] direct read of plugin memory: %s\n", r.ok() ? "OK" : "FAULT");
    // ...but even the app cannot write it (the grant was read-only).
    auto w = co_await env.kernel->TouchUser(env, pbuf.value(), 64, hw::AccessType::kWrite);
    std::printf("[app] direct write of plugin memory: %s (expected FAULT)\n",
                w.ok() ? "OK" : "FAULT");

    // Register a plugin entry point that misbehaves on request.
    core::EntryDesc entry;
    entry.name = "render";
    entry.signature = core::EntrySignature{.in_regs = 1, .out_regs = 1, .stack_bytes = 0};
    entry.policy = core::IsolationPolicy::Low();  // plugin can't demand much
    entry.fn = [](os::Env e, core::CallArgs a) -> sim::Task<uint64_t> {
      if (a.regs[0] == 0xDEAD) {
        core::Dipc::Crash();  // plugin bug: the thread faults inside the domain
      }
      co_await e.kernel->Spend(*e.self, sim::Duration::Micros(2), os::TimeCat::kUser);
      co_return a.regs[0] + 1;
    };
    auto handle = dipc.EntryRegister(app, *plugin_dom, {entry});
    // The app wants its registers/stack protected from the plugin: caller-
    // side High policy (the stubs+proxy enforce it; the plugin can't opt out,
    // P5).
    auto req = dipc.EntryRequest(app, *handle.value(),
                                 {{entry.signature, core::IsolationPolicy::High()}});
    (void)dipc.GrantCreate(*dipc.DomDefault(app), *req.value().proxy_domain);
    core::ProxyRef render = req.value().proxies[0];

    core::CallArgs ok_args;
    ok_args.regs[0] = 7;
    uint64_t v = co_await render.Call(env, ok_args);
    std::printf("[app] plugin render(7) = %llu\n", (unsigned long long)v);

    core::CallArgs bad_args;
    bad_args.regs[0] = 0xDEAD;
    (void)co_await render.Call(env, bad_args);
    base::ErrorCode err = env.self->TakeError();
    std::printf("[app] plugin crash surfaced as error '%s'; app keeps running (P3)\n",
                std::string(base::ErrorCodeName(err)).c_str());
    v = co_await render.Call(env, ok_args);
    std::printf("[app] plugin still callable afterwards: render(7) = %llu\n",
                (unsigned long long)v);
  });

  kernel.Run();
  return 0;
}
