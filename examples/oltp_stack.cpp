// The paper's running example (§2, §7.4): the 3-tier OLTP web stack under
// the three configurations, printing throughput, latency, and time
// breakdowns side by side.
//
// Build & run:  ./build/examples/oltp_stack
#include <cstdio>

#include <string>
#include "apps/oltp/oltp.h"

using namespace dipc::apps;

int main() {
  std::printf("3-tier OLTP web stack (Apache-like / PHP-like / MariaDB-like), 4 CPUs,\n");
  std::printf("in-memory DB, 64 threads/component, ~212 cross-domain calls per op.\n\n");
  std::printf("%-16s %12s %12s %7s %8s %7s\n", "config", "ops/min", "latency[ms]", "user%",
              "kernel%", "idle%");
  double linux_opm = 0, dipc_opm = 0, ideal_opm = 0;
  for (OltpMode mode : {OltpMode::kLinuxIpc, OltpMode::kDipc, OltpMode::kIdeal}) {
    OltpConfig c;
    c.mode = mode;
    c.storage = DbStorage::kMemory;
    c.threads = 64;
    OltpResult r = RunOltp(c);
    std::printf("%-16s %12.0f %12.2f %6.0f%% %7.0f%% %6.0f%%\n",
                std::string(OltpModeName(mode)).c_str(), r.ops_per_min, r.avg_latency_ms,
                100 * r.UserFrac(), 100 * r.KernelFrac(), 100 * r.IdleFrac());
    if (mode == OltpMode::kLinuxIpc) {
      linux_opm = r.ops_per_min;
    } else if (mode == OltpMode::kDipc) {
      dipc_opm = r.ops_per_min;
    } else {
      ideal_opm = r.ops_per_min;
    }
  }
  std::printf("\n=> dIPC: %.2fx over Linux, %.0f%% of the Ideal (unsafe) configuration\n",
              dipc_opm / linux_opm, 100.0 * dipc_opm / ideal_opm);
  std::printf("   (paper: up to 5.12x, 2.13x on average, always >94%% of Ideal)\n");
  return 0;
}
